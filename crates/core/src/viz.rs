//! Factor-space visualisation and clustering diagnostics (Fig. 7e).
//!
//! The paper projects the learned factors with t-SNE and observes that
//! "each red point (topmost level) is surrounded by a set of green points
//! (level 2), which in turn is surrounded by the blue points (level 3)".
//! We provide:
//!
//! * [`pca_2d`] — fast deterministic 2-D projection (power iteration);
//! * [`tsne_2d`] — a small exact t-SNE for up to a few thousand points
//!   (O(n²) per iteration), substituting the paper's t-SNE tool;
//! * [`ancestor_distance_ratio`] — a *quantitative* version of the
//!   figure's claim: mean distance from a node's effective factor to its
//!   parent's, divided by mean distance to a random same-level node's
//!   parent. Taxonomy-constrained factors give a ratio well below 1;
//!   independent (MF-style) factors give ≈ 1.

use crate::scoring::Scorer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taxrec_factors::FactorMatrix;
use taxrec_taxonomy::NodeId;

/// Project rows of `m` onto their two top principal components.
///
/// Power iteration with deflation on the mean-centred data; deterministic
/// for a given seed. Returns one `[x, y]` per row.
pub fn pca_2d(m: &FactorMatrix, seed: u64) -> Vec<[f32; 2]> {
    let (n, k) = (m.rows(), m.k());
    if n == 0 {
        return Vec::new();
    }
    // Mean-centre.
    let mut mean = vec![0.0f64; k];
    for r in 0..n {
        for (j, &v) in m.row(r).iter().enumerate() {
            mean[j] += v as f64;
        }
    }
    for v in &mut mean {
        *v /= n as f64;
    }
    let mut centred = Vec::with_capacity(n * k);
    for r in 0..n {
        let row = m.row(r);
        for j in 0..k {
            centred.push(row[j] as f64 - mean[j]);
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let pc1 = power_iteration(&centred, n, k, None, &mut rng);
    let pc2 = power_iteration(&centred, n, k, Some(&pc1), &mut rng);

    (0..n)
        .map(|r| {
            let row = &centred[r * k..(r + 1) * k];
            let x: f64 = row.iter().zip(&pc1).map(|(a, b)| a * b).sum();
            let y: f64 = row.iter().zip(&pc2).map(|(a, b)| a * b).sum();
            [x as f32, y as f32]
        })
        .collect()
}

/// Leading eigenvector of `XᵀX` (optionally deflated against `orth`).
fn power_iteration(
    x: &[f64],
    n: usize,
    k: usize,
    orth: Option<&[f64]>,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut v: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    normalise(&mut v);
    for _ in 0..100 {
        // w = Xᵀ (X v)
        let mut w = vec![0.0f64; k];
        for r in 0..n {
            let row = &x[r * k..(r + 1) * k];
            let dot: f64 = row.iter().zip(&v).map(|(a, b)| a * b).sum();
            for (wj, &rj) in w.iter_mut().zip(row) {
                *wj += dot * rj;
            }
        }
        if let Some(o) = orth {
            let proj: f64 = w.iter().zip(o).map(|(a, b)| a * b).sum();
            for (wj, &oj) in w.iter_mut().zip(o) {
                *wj -= proj * oj;
            }
        }
        let norm = normalise(&mut w);
        if norm < 1e-12 {
            // Degenerate direction (e.g. rank-1 data): return any unit
            // vector orthogonal to `orth`.
            return w;
        }
        let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        v = w;
        if delta < 1e-10 {
            break;
        }
    }
    v
}

fn normalise(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Options for [`tsne_2d`].
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions (5–50 typical).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate; `0.0` selects the scale-aware default
    /// `max(n / 12, 10)` (large fixed rates diverge on small point sets).
    pub learning_rate: f64,
    /// RNG seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 20.0,
            iterations: 300,
            learning_rate: 0.0,
            seed: 42,
        }
    }
}

/// Exact t-SNE to 2-D. O(n²) per iteration — intended for the ≤ few
/// thousand interior taxonomy nodes of Fig. 7(e), not for item sets.
pub fn tsne_2d(m: &FactorMatrix, config: &TsneConfig) -> Vec<[f32; 2]> {
    let n = m.rows();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![[0.0, 0.0]];
    }
    let k = m.k();

    // Pairwise squared distances in the input space.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0f64;
            for z in 0..k {
                let d = (m.row(i)[z] - m.row(j)[z]) as f64;
                s += d * d;
            }
            d2[i * n + j] = s;
            d2[j * n + i] = s;
        }
    }

    // Conditional affinities with per-point bandwidth found by binary
    // search on the perplexity.
    let target_h = config.perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let (mut beta_lo, mut beta_hi) = (0.0f64, f64::INFINITY);
        let mut beta = 1.0f64;
        for _ in 0..50 {
            let mut sum = 0.0f64;
            let mut sum_dp = 0.0f64;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let pij = (-beta * d2[i * n + j]).exp();
                sum += pij;
                sum_dp += pij * d2[i * n + j];
            }
            if sum <= 0.0 {
                break;
            }
            let h = beta * sum_dp / sum + sum.ln();
            if (h - target_h).abs() < 1e-5 {
                break;
            }
            if h > target_h {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let mut sum = 0.0f64;
        for j in 0..n {
            if j != i {
                p[i * n + j] = (-beta * d2[i * n + j]).exp();
                sum += p[i * n + j];
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrise, with early exaggeration folded in.
    let mut pm = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pm[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<[f64; 2]> = (0..n)
        .map(|_| [rng.gen_range(-1e-4..1e-4), rng.gen_range(-1e-4..1e-4)])
        .collect();
    let mut vel: Vec<[f64; 2]> = vec![[0.0, 0.0]; n];
    let lr = if config.learning_rate > 0.0 {
        config.learning_rate
    } else {
        (n as f64 / 12.0).max(10.0)
    };

    for iter in 0..config.iterations {
        let exaggeration = if iter < config.iterations / 4 {
            4.0
        } else {
            1.0
        };
        // Student-t affinities in the embedding.
        let mut qnum = vec![0.0f64; n * n];
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let qu = 1.0 / (1.0 + dx * dx + dy * dy);
                qnum[i * n + j] = qu;
                qnum[j * n + i] = qu;
                qsum += 2.0 * qu;
            }
        }
        let momentum = if iter < 50 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let qu = qnum[i * n + j];
                let qij = (qu / qsum).max(1e-12);
                let coef = 4.0 * (exaggeration * pm[i * n + j] - qij) * qu;
                grad[0] += coef * (y[i][0] - y[j][0]);
                grad[1] += coef * (y[i][1] - y[j][1]);
            }
            for z in 0..2 {
                vel[i][z] = momentum * vel[i][z] - lr * grad[z];
                y[i][z] += vel[i][z];
            }
        }
    }
    y.iter().map(|p| [p[0] as f32, p[1] as f32]).collect()
}

/// Quantitative clustering statistic behind Fig. 7(e).
///
/// For every node below `min_level`, compares the distance from its
/// effective factor to its parent's against the distance to the parent of
/// a random other node at the same level. Returns
/// `mean(d_parent) / mean(d_random)`; `< 1` means children hug their own
/// ancestors (taxonomy structure is visible in factor space).
pub fn ancestor_distance_ratio<M: std::ops::Deref<Target = crate::model::TfModel>>(
    scorer: &Scorer<M>,
    seed: u64,
) -> Option<f64> {
    let tax = scorer.model().taxonomy();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d_parent = 0.0f64;
    let mut d_random = 0.0f64;
    let mut count = 0u64;
    for level in 2..=tax.depth() {
        let nodes = tax.nodes_at_level(level);
        if nodes.len() < 2 {
            continue;
        }
        for &n in nodes {
            let node = NodeId(n);
            let parent = tax.parent(node).expect("level ≥ 2 has a parent");
            // Random other node's parent at this level.
            let other = loop {
                let o = nodes[rng.gen_range(0..nodes.len())];
                if o != n {
                    break NodeId(o);
                }
            };
            let other_parent = tax.parent(other).expect("level ≥ 2 has a parent");
            let f = scorer.node_factor(node);
            d_parent += dist(f, scorer.node_factor(parent));
            d_random += dist(f, scorer.node_factor(other_parent));
            count += 1;
        }
    }
    (count > 0 && d_random > 0.0).then(|| d_parent / d_random)
}

fn dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::TfModel;
    use rand::rngs::StdRng as TestRng;
    use std::sync::Arc;
    use taxrec_taxonomy::{Taxonomy, TaxonomyGenerator, TaxonomyShape};

    fn matrix_from(rows: Vec<Vec<f32>>) -> FactorMatrix {
        let k = rows[0].len();
        let mut m = FactorMatrix::zeros(rows.len(), k);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        m
    }

    #[test]
    fn pca_separates_two_clusters() {
        // Two tight clusters along one axis must separate in PC1.
        let mut rows = Vec::new();
        for i in 0..20 {
            let base = if i < 10 { -5.0 } else { 5.0 };
            rows.push(vec![base + (i % 3) as f32 * 0.01, 0.1, -0.1, 0.05]);
        }
        let proj = pca_2d(&matrix_from(rows), 1);
        let left: f32 = proj[..10].iter().map(|p| p[0]).sum::<f32>() / 10.0;
        let right: f32 = proj[10..].iter().map(|p| p[0]).sum::<f32>() / 10.0;
        assert!(
            (left - right).abs() > 5.0,
            "clusters not separated: {left} vs {right}"
        );
    }

    #[test]
    fn pca_handles_empty_and_single() {
        assert!(pca_2d(&FactorMatrix::zeros(0, 3), 1).is_empty());
        let one = pca_2d(&FactorMatrix::zeros(1, 3), 1);
        assert_eq!(one.len(), 1);
        assert!(one[0][0].is_finite());
    }

    #[test]
    fn pca_deterministic() {
        use rand::SeedableRng;
        let m = FactorMatrix::gaussian(30, 6, 1.0, &mut TestRng::seed_from_u64(4));
        assert_eq!(pca_2d(&m, 7), pca_2d(&m, 7));
    }

    #[test]
    fn tsne_separates_two_clusters() {
        let mut rows = Vec::new();
        for i in 0..30 {
            let base = if i < 15 { -10.0 } else { 10.0 };
            rows.push(vec![base + (i % 5) as f32 * 0.1, (i % 3) as f32 * 0.1]);
        }
        let cfg = TsneConfig {
            perplexity: 5.0,
            iterations: 200,
            ..Default::default()
        };
        let emb = tsne_2d(&matrix_from(rows), &cfg);
        // Mean intra-cluster distance must be far below inter-cluster.
        let d = |a: [f32; 2], b: [f32; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        let mut intra = 0.0f32;
        let mut inter = 0.0f32;
        let mut ni = 0;
        let mut nx = 0;
        for i in 0..30 {
            for j in (i + 1)..30 {
                if (i < 15) == (j < 15) {
                    intra += d(emb[i], emb[j]);
                    ni += 1;
                } else {
                    inter += d(emb[i], emb[j]);
                    nx += 1;
                }
            }
        }
        let intra = intra / ni as f32;
        let inter = inter / nx as f32;
        assert!(inter > 2.0 * intra, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn tsne_small_inputs() {
        assert!(tsne_2d(&FactorMatrix::zeros(0, 2), &TsneConfig::default()).is_empty());
        assert_eq!(
            tsne_2d(&FactorMatrix::zeros(1, 2), &TsneConfig::default()),
            vec![[0.0, 0.0]]
        );
        let two = tsne_2d(
            &matrix_from(vec![vec![0.0, 0.0], vec![1.0, 1.0]]),
            &TsneConfig {
                iterations: 20,
                ..Default::default()
            },
        );
        assert_eq!(two.len(), 2);
        assert!(two.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }

    fn tax() -> Arc<Taxonomy> {
        use rand::SeedableRng;
        Arc::new(
            TaxonomyGenerator::new(TaxonomyShape {
                level_sizes: vec![4, 12, 30],
                num_items: 300,
                item_skew: 0.5,
            })
            .generate(&mut TestRng::seed_from_u64(6))
            .taxonomy,
        )
    }

    #[test]
    fn distance_ratio_small_for_taxonomy_factors() {
        // A Gaussian-initialised TF model already has eff(child) =
        // eff(parent) + small offset, so the ratio must be well below 1.
        let cfg = ModelConfig::tf(4, 0)
            .with_factors(8)
            .with_node_init_sigma(0.1);
        let m = TfModel::init(cfg, tax(), 4, 2);
        let s = crate::scoring::Scorer::new(&m);
        let ratio = ancestor_distance_ratio(&s, 1).unwrap();
        assert!(ratio < 0.9, "ratio {ratio}");
    }

    #[test]
    fn distance_ratio_near_one_for_flat_factors() {
        // With U = 1 the effective factor of an interior node is ~0 …
        // actually every interior node collapses to the same point, making
        // the ratio degenerate; instead compare U=2 (parents carry
        // independent random offsets, children don't hug *their own*
        // parent more than a random one beyond the shared-ancestor term).
        let m = TfModel::init(
            ModelConfig::tf(1, 0)
                .with_factors(8)
                .with_node_init_sigma(0.1),
            tax(),
            4,
            2,
        );
        let s = crate::scoring::Scorer::new(&m);
        // U=1: all interior effectives are zero vectors → d_parent and
        // d_random both equal ‖f(node)‖ = 0 for interior nodes at levels
        // 2..3 and equal for leaves; ratio ≈ 1 (or None if degenerate).
        if let Some(r) = ancestor_distance_ratio(&s, 1) {
            assert!(r > 0.9, "flat model ratio {r}");
        }
    }
}
