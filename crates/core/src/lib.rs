//! # taxrec-core
//!
//! The taxonomy-aware latent factor model **TF(U, B)** of Kanagal et al.,
//! *"Supercharging Recommender Systems using Taxonomies for Learning User
//! Purchase Behavior"*, PVLDB 5(10), 2012 — plus everything around it:
//! BPR/SGD training (serial and multi-core with per-row locks and drift
//! caches), sibling-based training, exhaustive and cascaded inference,
//! ranking metrics, a parallel evaluation harness, and factor-space
//! diagnostics.
//!
//! ## Model zoo (paper Sec. 7.2)
//!
//! | System  | Construction                         | Notes                       |
//! |---------|--------------------------------------|-----------------------------|
//! | `MF(0)` | [`ModelConfig::mf`]`(0)`             | BPR matrix factorisation    |
//! | `MF(1)` | [`ModelConfig::mf`]`(1)`             | FPMC (Rendle et al. 2010)   |
//! | `TF(U,0)` | [`ModelConfig::tf`]`(U, 0)`        | taxonomy, no temporal term  |
//! | `TF(U,B)` | [`ModelConfig::tf`]`(U, B)`        | full model                  |
//!
//! ## End to end
//!
//! ```
//! use taxrec_core::{ModelConfig, TfTrainer, eval::{evaluate, EvalConfig}};
//! use taxrec_dataset::{DatasetConfig, SyntheticDataset};
//!
//! let data = SyntheticDataset::generate(&DatasetConfig::tiny(), 1);
//! let cfg = ModelConfig::tf(4, 1).with_factors(8).with_epochs(3);
//! let model = TfTrainer::new(cfg, &data.taxonomy).fit(&data.train, 1);
//! let result = evaluate(&model, &data.train, &data.test, &EvalConfig::fast());
//! println!("AUC = {:?}", result.auc);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod dynamic;
pub mod eval;
pub mod histogram;
pub mod inference;
pub mod live;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod obs;
pub mod persist;
pub mod recommend;
pub mod scoring;
pub mod tier;
pub mod train;
pub mod tune;
pub mod viz;

pub use config::ModelConfig;
pub use eval::{
    evaluate, evaluate_cascaded, evaluate_static, CascadeEvalResult, EvalConfig, EvalResult,
};
pub use inference::{cascade, cascaded_auc, CascadeConfig, CascadeResult};
pub use live::{LiveConfig, LiveEngine, LiveHandle, LiveState, ModelCell, UpdateEvent};
pub use model::TfModel;
pub use obs::{MetricsRegistry, Obs, ScanMetrics, Tracer};
pub use recommend::{
    Backend, F32Kernel, QuantPoolStats, QuantizedConfig, RecommendEngine, RecommendRequest,
    SCAN_KERNEL_ENV,
};
pub use scoring::Scorer;
pub use tier::{FoldRecipe, TierStatsSnapshot, UserTier};
pub use train::{untrained_model, TfTrainer, TrainStats};
pub use tune::{grid_search, holdout_last_t, GridSearchResult};
