//! Dynamic-catalog and online operations: the production concerns the
//! paper motivates ("new items are released continuously", users arrive
//! after training) turned into API.
//!
//! * [`TfModel::with_added_item`] — register a just-released product
//!   under its category. Its offsets start at the prior mean 0, so its
//!   effective factor *is* its category's (the paper's Fig. 7c
//!   estimate); later training refines it.
//! * [`fold_in_user`] — compute a factor for a user who was not in the
//!   training matrix, by running the user-gradient-only BPR updates
//!   against the frozen item factors. The standard fold-in trick for
//!   latent factor models; no other parameter moves.
//! * [`TfTrainer::resume`] — warm-start training of an existing model on
//!   new data (more epochs, new transactions), preserving learned state.

use crate::config::ModelConfig;
use crate::model::TfModel;
use crate::scoring::Scorer;
use crate::tier::FoldRecipe;
use crate::train::sampler::sample_negative;
use crate::train::{TfTrainer, TrainStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use taxrec_dataset::{PurchaseLog, Transaction};
use taxrec_factors::{ops, FactorMatrix};
use taxrec_taxonomy::{ItemId, NodeId, PathTable, TaxonomyError};

impl TfModel {
    /// Extend the model with a newly released item under `parent`
    /// (an interior category node). Existing ids and factors are
    /// untouched; the new node's offsets start at 0 in both matrices.
    pub fn with_added_item(&self, parent: NodeId) -> Result<(TfModel, ItemId), TaxonomyError> {
        let mut grown = self.clone();
        let item = grown.add_item_mut(parent)?;
        Ok((grown, item))
    }

    /// In-place variant of [`with_added_item`](Self::with_added_item) —
    /// the live applier's primitive. Swaps in the grown taxonomy,
    /// appends one zero offset row to both node matrices, and appends
    /// the new item's truncated path. Every mutation is chunk-local
    /// copy-on-write: the matrix appends touch only the tail chunk
    /// (copied once if shared with an earlier clone) and the path table
    /// diverges once per clone via `Arc::make_mut` — the rest of the
    /// model stays structurally shared with every snapshot it descended
    /// from. Every existing node/item/user id keeps its meaning, factors
    /// are bit-identical, and the new item's effective factor equals its
    /// category's (the paper's Fig. 7(c) cold-start estimate).
    pub fn add_item_mut(&mut self, parent: NodeId) -> Result<ItemId, TaxonomyError> {
        let (tax, _node, item) = self.taxonomy().with_added_leaf(parent)?;
        let old_depth = self.taxonomy.depth();
        self.taxonomy = Arc::new(tax);
        let zero = vec![0.0f32; self.k()];
        self.node_factors.push_row(&zero);
        self.next_factors.push_row(&zero);
        let cutoff = crate::model::cutoff_for(&self.taxonomy, self.config.taxonomy_update_levels);
        if cutoff == self.cutoff_level && self.taxonomy.depth() == old_depth {
            Arc::make_mut(&mut self.paths).append_item(&self.taxonomy, item);
        } else {
            // Degenerate growth (a leaf under a childless root) changed
            // the level structure; rebuild instead of appending.
            self.paths = Arc::new(PathTable::build(
                &self.taxonomy,
                self.config.taxonomy_update_levels,
            ));
            self.cutoff_level = cutoff;
        }
        Ok(item)
    }

    /// Append one user row (a folded-in user's factor, computed by
    /// [`fold_in_user`]) and return the new user id. `O(K)`; no other
    /// parameter moves.
    ///
    /// # Panics
    /// If `factor.len() != K`, or on a tiered model (which needs the
    /// fold recipe — use [`push_user_with_recipe`](Self::push_user_with_recipe)).
    pub fn push_user(&mut self, factor: &[f32]) -> usize {
        assert!(
            self.user_tier.is_none(),
            "tiered models require push_user_with_recipe"
        );
        self.user_factors.push_row(factor);
        self.user_factors.rows() - 1
    }

    /// [`push_user`](Self::push_user) carrying the [`FoldRecipe`] a
    /// tiered model needs to reconstruct the row after eviction. On a
    /// resident model the recipe is ignored.
    pub(crate) fn push_user_with_recipe(&mut self, factor: &[f32], recipe: FoldRecipe) -> usize {
        match &mut self.user_tier {
            None => {
                self.user_factors.push_row(factor);
                self.user_factors.rows() - 1
            }
            Some(h) => {
                let id = h.rows;
                h.tier.set_row(id, factor, recipe);
                h.rows += 1;
                id
            }
        }
    }
}

/// Compute a latent factor for an out-of-matrix user from their observed
/// transactions, against frozen item factors.
///
/// Runs `steps` BPR steps updating only the user vector: sample a
/// purchase `(t, i)`, a catalog negative `j`, and ascend
/// `ln σ(s_t(i) − s_t(j))` in the user coordinate. Returns the folded-in
/// factor; score with [`folded_user_query`].
pub fn fold_in_user<M: std::ops::Deref<Target = TfModel>>(
    scorer: &Scorer<M>,
    history: &[Transaction],
    steps: usize,
    seed: u64,
) -> Vec<f32> {
    let n_items = scorer.model().num_items();
    fold_in_user_with_catalog(scorer, history, steps, seed, n_items)
}

/// [`fold_in_user`] with the negative-sampling catalog size pinned to
/// `n_items` instead of the scorer's current catalog. This is what makes
/// fold-in **replayable on a grown model**: `add_item` only appends zero
/// offset rows (existing items' effective factors are bit-identical in
/// every later model), so re-running with the *recorded* catalog size
/// replays the exact RNG path and lands on the bit-identical factor —
/// the hot/cold tier's fault path depends on it.
pub fn fold_in_user_with_catalog<M: std::ops::Deref<Target = TfModel>>(
    scorer: &Scorer<M>,
    history: &[Transaction],
    steps: usize,
    seed: u64,
    n_items: usize,
) -> Vec<f32> {
    let model = scorer.model();
    let cfg = model.config();
    let k = model.k();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v_u = vec![0.0f32; k];
    // Start at the prior mean; the Gaussian user init only exists to
    // break symmetry during joint training, which is not a concern here.
    let purchases: Vec<(usize, ItemId)> = history
        .iter()
        .enumerate()
        .flat_map(|(t, basket)| basket.iter().map(move |&i| (t, i)))
        .collect();
    if purchases.is_empty() {
        return v_u;
    }
    let mut q = vec![0.0f32; k];
    let mut diff = vec![0.0f32; k];
    for _ in 0..steps {
        let &(t, i) = &purchases[rng.gen_range(0..purchases.len())];
        let basket = &history[t];
        let Some(j) = sample_negative(basket, n_items, &mut rng) else {
            continue;
        };
        // q = v_u + Markov term over history[..t] (frozen next factors).
        q.copy_from_slice(&v_u);
        if cfg.max_prev_transactions > 0 {
            let hist = &history[..t];
            for n in 1..=cfg.max_prev_transactions.min(hist.len()) {
                let b = &hist[hist.len() - n];
                if b.is_empty() {
                    continue;
                }
                let w = cfg.markov_weight(n) / b.len() as f32;
                for &l in b {
                    ops::axpy(w, scorer.next_item_factor(l), &mut q);
                }
            }
        }
        let vi = scorer.item_factor(i);
        let vj = scorer.item_factor(j);
        ops::sub_into(vi, vj, &mut diff);
        let c = 1.0 - ops::sigmoid(ops::dot(&q, vi) - ops::dot(&q, vj));
        for z in 0..k {
            v_u[z] += cfg.learning_rate * (c * diff[z] - cfg.lambda * v_u[z]);
        }
    }
    v_u
}

/// Build the query vector for a folded-in user (the analogue of
/// [`Scorer::query`] with an external user factor).
pub fn folded_user_query<M: std::ops::Deref<Target = TfModel>>(
    scorer: &Scorer<M>,
    user_factor: &[f32],
    history: &[Transaction],
) -> Vec<f32> {
    let model = scorer.model();
    let cfg = model.config();
    let mut q = user_factor.to_vec();
    if cfg.max_prev_transactions > 0 {
        for n in 1..=cfg.max_prev_transactions.min(history.len()) {
            let b = &history[history.len() - n];
            if b.is_empty() {
                continue;
            }
            let w = cfg.markov_weight(n) / b.len() as f32;
            for &l in b {
                ops::axpy(w, scorer.next_item_factor(l), &mut q);
            }
        }
    }
    q
}

impl TfTrainer {
    /// Warm-start: continue training `model` on `train` for
    /// `self.config().epochs` more epochs. The model's learned factors
    /// are the starting point; the trainer's config drives the run (and
    /// must agree with the model on `K`, `U` and the taxonomy).
    ///
    /// `train` may contain more users than the model knows; new user
    /// rows are appended with the standard Gaussian init.
    ///
    /// # Panics
    /// If `K`/`U` disagree or the taxonomy differs.
    pub fn resume(
        &self,
        model: &TfModel,
        train: &PurchaseLog,
        seed: u64,
        threads: usize,
    ) -> (TfModel, TrainStats) {
        let cfg: &ModelConfig = self.config();
        assert_eq!(cfg.factors, model.k(), "factor dim mismatch");
        assert_eq!(
            cfg.taxonomy_update_levels,
            model.config().taxonomy_update_levels,
            "taxonomyUpdateLevels mismatch"
        );
        assert_eq!(
            self.taxonomy_ref().num_nodes(),
            model.taxonomy().num_nodes(),
            "taxonomy mismatch"
        );
        assert!(
            train.num_users() >= model.num_users(),
            "warm-start log must cover the model's users"
        );
        // Seed matrices from the model, growing the user matrix if the
        // log brings new users.
        let mut user_factors = model.user_factors.clone();
        if train.num_users() > model.num_users() {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let fresh = FactorMatrix::gaussian(
                train.num_users() - model.num_users(),
                cfg.factors,
                cfg.init_sigma,
                &mut rng,
            );
            for r in 0..fresh.rows() {
                user_factors.push_row(fresh.row(r));
            }
        }
        let warm = TfModel {
            taxonomy: model.taxonomy_arc(),
            config: cfg.clone(),
            user_factors,
            node_factors: model.node_factors.clone(),
            next_factors: model.next_factors.clone(),
            // Same taxonomy + same update levels (asserted above), so
            // the model's existing table is bit-identical — share it.
            paths: Arc::clone(&model.paths),
            cutoff_level: model.cutoff_level(),
            user_tier: None,
        };
        self.fit_parallel_from(warm, train, seed, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, EvalConfig};
    use crate::metrics;
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};

    fn data() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny().with_users(1200), 31)
    }

    fn trained(d: &SyntheticDataset, epochs: usize) -> TfModel {
        TfTrainer::new(
            ModelConfig::tf(4, 1).with_factors(8).with_epochs(epochs),
            &d.taxonomy,
        )
        .fit(&d.train, 2)
    }

    #[test]
    fn added_item_scores_like_its_category() {
        let d = data();
        let m = trained(&d, 8);
        let parent = {
            // Lowest category level: parent of item 0.
            let tax = m.taxonomy();
            tax.parent(tax.item_node(ItemId(0))).unwrap()
        };
        let (m2, new_item) = m.with_added_item(parent).unwrap();
        assert_eq!(m2.num_items(), m.num_items() + 1);
        let s2 = Scorer::new(&m2);
        let q = s2.query(0, d.train.user(0));
        // Effective factor of the new item == its parent category's.
        let got = s2.score_item(&q, new_item);
        let want = s2.score_node(&q, parent);
        assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        // Old items keep their exact scores.
        let s1 = Scorer::new(&m);
        let q1 = s1.query(0, d.train.user(0));
        for i in [0u32, 7, 200] {
            assert!((s1.score_item(&q1, ItemId(i)) - s2.score_item(&q, ItemId(i))).abs() < 1e-5);
        }
    }

    #[test]
    fn added_item_requires_interior_parent() {
        let d = data();
        let m = trained(&d, 1);
        let leaf = m.taxonomy().item_node(ItemId(3));
        assert!(m.with_added_item(leaf).is_err());
    }

    #[test]
    fn fold_in_beats_zero_vector() {
        let d = data();
        let m = trained(&d, 10);
        let scorer = Scorer::new(&m);
        // Take a real user's history as the "new" user; fold in on all
        // but the last transaction, test on the last.
        let mut auc_folded = 0.0f64;
        let mut auc_zero = 0.0f64;
        let mut total = 0usize;
        for u in 0..d.train.num_users().min(250) {
            let hist = d.train.user(u);
            if hist.len() < 3 {
                continue;
            }
            let (past, target) = hist.split_at(hist.len() - 1);
            let v = fold_in_user(&scorer, past, 400, 7);
            let q_folded = folded_user_query(&scorer, &v, past);
            let q_zero = folded_user_query(&scorer, &vec![0.0; m.k()], past);
            let sf = scorer.score_all_items(&q_folded);
            let sz = scorer.score_all_items(&q_zero);
            let pos: Vec<usize> = target[0].iter().map(|i| i.index()).collect();
            let (Some(af), Some(az)) = (metrics::auc(&sf, &pos), metrics::auc(&sz, &pos)) else {
                continue;
            };
            total += 1;
            auc_folded += af;
            auc_zero += az;
        }
        assert!(total >= 30, "not enough evaluable users ({total})");
        let (mf, mz) = (auc_folded / total as f64, auc_zero / total as f64);
        assert!(
            mf > mz + 0.01,
            "fold-in mean AUC {mf:.4} must beat history-only baseline {mz:.4} over {total} users"
        );
    }

    #[test]
    fn fold_in_is_deterministic_and_leaves_model_untouched() {
        let d = data();
        let m = trained(&d, 4);
        let before = m.clone();
        let scorer = Scorer::new(&m);
        let hist = d.train.user(0).to_vec();
        let a = fold_in_user(&scorer, &hist, 300, 1234);
        let b = fold_in_user(&scorer, &hist, 300, 1234);
        // Bit-identical for a fixed seed: the event log replays fold-ins
        // by (history, steps, seed) and must land on the same factor.
        assert_eq!(a, b);
        // A different seed explores a different sample path.
        let c = fold_in_user(&scorer, &hist, 300, 99);
        assert_ne!(a, c);
        drop(scorer);
        // Every item/category factor stays bit-identical: fold-in only
        // produces a user vector, it never writes the model.
        assert_eq!(before.node_factors, m.node_factors);
        assert_eq!(before.next_factors, m.next_factors);
        assert_eq!(before.user_factors, m.user_factors);
    }

    #[test]
    fn added_item_preserves_rankings_for_untouched_users() {
        use crate::recommend::{RecommendEngine, RecommendRequest};
        let d = data();
        let m = trained(&d, 4);
        let parent = {
            let tax = m.taxonomy();
            tax.parent(tax.item_node(ItemId(5))).unwrap()
        };
        let (m2, new_item) = m.with_added_item(parent).unwrap();
        // All existing ids survive.
        for i in m.taxonomy().item_ids() {
            assert_eq!(m.taxonomy().item_node(i), m2.taxonomy().item_node(i));
        }
        // With the new item masked out, every user's full ranking over
        // the pre-existing catalog is unchanged.
        let before = RecommendEngine::new(&m);
        let after = RecommendEngine::new(&m2);
        let exclude = [new_item];
        for user in [0usize, 13, 77, 401] {
            let hist = d.train.user(user);
            let old = before.recommend(&RecommendRequest {
                user,
                history: hist,
                k: 25,
                exclude: &[],
            });
            let new = after.recommend(&RecommendRequest {
                user,
                history: hist,
                k: 25,
                exclude: &exclude,
            });
            assert_eq!(old.len(), new.len(), "user {user}");
            for (rank, ((ia, sa), (ib, sb))) in old.iter().zip(&new).enumerate() {
                assert_eq!(ia, ib, "user {user} rank {rank}");
                assert!((sa - sb).abs() < 1e-6, "user {user} rank {rank}");
            }
        }
    }

    #[test]
    fn add_item_mut_matches_with_added_item() {
        let d = data();
        let m = trained(&d, 2);
        let parent = {
            let tax = m.taxonomy();
            tax.parent(tax.item_node(ItemId(0))).unwrap()
        };
        let (grown, item) = m.with_added_item(parent).unwrap();
        let mut mutated = m.clone();
        let item2 = mutated.add_item_mut(parent).unwrap();
        assert_eq!(item, item2);
        assert_eq!(grown.node_factors, mutated.node_factors);
        assert_eq!(grown.next_factors, mutated.next_factors);
        assert_eq!(grown.user_factors, mutated.user_factors);
        assert_eq!(grown.taxonomy().num_nodes(), mutated.taxonomy().num_nodes());
        assert_eq!(grown.cutoff_level(), mutated.cutoff_level());
    }

    #[test]
    fn push_user_appends_and_scores() {
        let d = data();
        let mut m = trained(&d, 2);
        let n = m.num_users();
        let factor: Vec<f32> = (0..m.k()).map(|i| i as f32 * 0.01).collect();
        let u = m.push_user(&factor);
        assert_eq!(u, n);
        assert_eq!(m.num_users(), n + 1);
        assert_eq!(m.user_factor(u), factor.as_slice());
    }

    #[test]
    fn fold_in_empty_history_is_zero() {
        let d = data();
        let m = trained(&d, 1);
        let scorer = Scorer::new(&m);
        let v = fold_in_user(&scorer, &[], 100, 1);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn resume_improves_or_matches_short_run() {
        let d = data();
        // 3 epochs cold vs 3 cold + 5 resumed: the resumed model must be
        // at least as good as the short run.
        let short = trained(&d, 3);
        let resumed = {
            let t = TfTrainer::new(
                ModelConfig::tf(4, 1).with_factors(8).with_epochs(5),
                &d.taxonomy,
            );
            t.resume(&short, &d.train, 9, 2).0
        };
        let cfg = EvalConfig::fast();
        let a_short = evaluate(&short, &d.train, &d.test, &cfg).auc.unwrap();
        let a_resumed = evaluate(&resumed, &d.train, &d.test, &cfg).auc.unwrap();
        assert!(
            a_resumed > a_short - 0.01,
            "resume regressed: {a_short:.4} -> {a_resumed:.4}"
        );
    }

    #[test]
    fn resume_grows_user_matrix_for_new_users() {
        let d = data();
        let m = trained(&d, 2);
        // Extend the log with 50 extra users cloned from the originals.
        let mut b = taxrec_dataset::PurchaseLogBuilder::new();
        for (_, h) in d.train.iter_users() {
            b.push_user(h.to_vec());
        }
        for u in 0..50 {
            b.push_user(d.train.user(u).to_vec());
        }
        let bigger = b.build();
        let t = TfTrainer::new(
            ModelConfig::tf(4, 1).with_factors(8).with_epochs(1),
            &d.taxonomy,
        );
        let (m2, _) = t.resume(&m, &bigger, 3, 2);
        assert_eq!(m2.num_users(), bigger.num_users());
    }

    #[test]
    #[should_panic(expected = "factor dim mismatch")]
    fn resume_rejects_k_mismatch() {
        let d = data();
        let m = trained(&d, 1);
        let t = TfTrainer::new(
            ModelConfig::tf(4, 1).with_factors(16).with_epochs(1),
            &d.taxonomy,
        );
        let _ = t.resume(&m, &d.train, 1, 1);
    }
}
