//! Cascaded inference (Sec. 5.1): top-down beam ranking through the
//! taxonomy.
//!
//! Exhaustive inference scores every item (`num_items` dot products per
//! user). Cascaded inference instead ranks the taxonomy level by level:
//! score the nodes of level 1, keep the best `k₁·size(1)`, expand only
//! their children, and recurse. The kept fractions trade accuracy for
//! work — Fig. 8(c,d) — and the per-level rankings double as the paper's
//! "structured" (category-level) recommendations.

use crate::model::TfModel;
use crate::scoring::Scorer;
use std::cmp::Ordering;
use taxrec_taxonomy::{ItemId, NodeId};

/// Per-level keep fractions `k_i ∈ [0, 1]` for levels `1..=depth`.
///
/// `n_i = max(1, ⌈k_i · size(level i)⌉)` nodes are kept at level `i`
/// (clamped to the current frontier).
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeConfig {
    /// One fraction per taxonomy level below the root.
    pub keep_fractions: Vec<f64>,
}

impl CascadeConfig {
    /// Same fraction at every level (`depth` levels below the root) —
    /// the sweep of Fig. 8(c).
    pub fn uniform(depth: usize, k: f64) -> Self {
        CascadeConfig {
            keep_fractions: vec![k; depth],
        }
    }

    /// Full fan-out above the leaves, fraction `k` at the leaf level —
    /// the monotone variant of Fig. 8(d).
    pub fn leaf_only(depth: usize, k: f64) -> Self {
        let mut keep_fractions = vec![1.0; depth];
        if let Some(last) = keep_fractions.last_mut() {
            *last = k;
        }
        CascadeConfig { keep_fractions }
    }

    fn fraction(&self, level: usize) -> f64 {
        // level is 1-based below the root.
        self.keep_fractions
            .get(level - 1)
            .copied()
            .unwrap_or(1.0)
            .clamp(0.0, 1.0)
    }
}

/// Outcome of one cascaded inference pass.
#[derive(Debug, Clone)]
pub struct CascadeResult {
    /// Ranked items that survived to the leaf level, best first.
    pub items: Vec<(ItemId, f32)>,
    /// Ranked kept nodes per level (index 0 = taxonomy level 1) — the
    /// structured category recommendation.
    pub per_level: Vec<Vec<(NodeId, f32)>>,
    /// Number of nodes scored — the work measure for the time/accuracy
    /// trade-off (exhaustive inference scores `num_items` leaves).
    pub scored_nodes: usize,
}

impl CascadeResult {
    /// Whether `item` survived the cascade.
    pub fn reached(&self, item: ItemId) -> bool {
        self.items.iter().any(|(i, _)| *i == item)
    }
}

/// Run cascaded inference for a prepared query vector.
pub fn cascade<M: std::ops::Deref<Target = TfModel>>(
    scorer: &Scorer<M>,
    query: &[f32],
    config: &CascadeConfig,
) -> CascadeResult {
    let tax = scorer.model().taxonomy();
    let depth = tax.depth();
    let mut per_level: Vec<Vec<(NodeId, f32)>> = Vec::with_capacity(depth);
    let mut scored_nodes = 0usize;

    // Frontier starts at level 1 (children of the root).
    let mut frontier: Vec<NodeId> = tax.children_ids(NodeId::ROOT).collect();
    for level in 1..=depth {
        let mut scored: Vec<(NodeId, f32)> = frontier
            .iter()
            .map(|&n| (n, scorer.score_node(query, n)))
            .collect();
        scored_nodes += scored.len();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));

        let level_size = tax.nodes_at_level(level).len().max(1);
        let keep = ((config.fraction(level) * level_size as f64).ceil() as usize).clamp(
            if config.fraction(level) > 0.0 { 1 } else { 0 },
            scored.len(),
        );
        scored.truncate(keep);

        frontier = scored
            .iter()
            .flat_map(|(n, _)| tax.children_ids(*n))
            .collect();
        per_level.push(scored);
    }

    // The last level's kept nodes are leaves = items.
    let items: Vec<(ItemId, f32)> = per_level
        .last()
        .map(|leafs| {
            leafs
                .iter()
                .filter_map(|&(n, s)| tax.node_item(n).map(|i| (i, s)))
                .collect()
        })
        .unwrap_or_default();

    CascadeResult {
        items,
        per_level,
        scored_nodes,
    }
}

/// AUC of a cascaded ranking against `positives`, over the full catalog.
///
/// Items pruned by the cascade are treated as tied below every survivor
/// (half credit among themselves), matching how a production system would
/// back-fill: survivors first, the rest in arbitrary order.
pub fn cascaded_auc(result: &CascadeResult, num_items: usize, positives: &[ItemId]) -> Option<f64> {
    let n_pos = positives.len();
    if n_pos == 0 || n_pos >= num_items {
        return None;
    }
    let n_neg = num_items - n_pos;
    let mut pos_sorted: Vec<ItemId> = positives.to_vec();
    pos_sorted.sort_unstable();

    let survivors = &result.items; // already sorted desc
    let is_pos: Vec<bool> = survivors
        .iter()
        .map(|(i, _)| pos_sorted.binary_search(i).is_ok())
        .collect();
    let pos_in_survivors = is_pos.iter().filter(|&&p| p).count();
    let pruned_pos = n_pos - pos_in_survivors;
    let pruned_neg = (num_items - survivors.len()) - pruned_pos;

    // Suffix counts: positives among survivors strictly below each rank.
    let mut pos_below = 0usize;
    let mut correct = 0.0f64;
    for rank in (0..survivors.len()).rev() {
        if is_pos[rank] {
            let below = survivors.len() - rank - 1;
            let neg_below = below - pos_below;
            correct += (neg_below + pruned_neg) as f64;
            pos_below += 1;
        }
    }

    // Pruned positives: tied with all pruned negatives → half credit.
    correct += pruned_pos as f64 * (pruned_neg as f64 / 2.0);

    Some(correct / (n_pos as f64 * n_neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::TfModel;
    use crate::scoring::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use taxrec_taxonomy::{Taxonomy, TaxonomyGenerator, TaxonomyShape};

    fn tax() -> Arc<Taxonomy> {
        Arc::new(
            TaxonomyGenerator::new(TaxonomyShape {
                level_sizes: vec![4, 8, 16],
                num_items: 200,
                item_skew: 0.4,
            })
            .generate(&mut StdRng::seed_from_u64(3))
            .taxonomy,
        )
    }

    fn scorer_fixture() -> (TfModel, ()) {
        // Gaussian node init: inference tests need non-degenerate scores.
        let cfg = ModelConfig::tf(4, 0)
            .with_factors(6)
            .with_node_init_sigma(0.1);
        let m = TfModel::init(cfg, tax(), 8, 1);
        (m, ())
    }

    #[test]
    fn full_cascade_equals_exhaustive() {
        let (m, _) = scorer_fixture();
        let s = Scorer::new(&m);
        let q = s.query(0, &[]);
        let cfg = CascadeConfig::uniform(m.taxonomy().depth(), 1.0);
        let res = cascade(&s, &q, &cfg);
        assert_eq!(res.items.len(), m.num_items());
        // Order must match the exhaustive ranking.
        let top = s.top_k_items(&q, 10, &[]);
        for (a, b) in res.items.iter().take(10).zip(&top) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-6);
        }
    }

    #[test]
    fn tighter_beam_scores_fewer_nodes() {
        let (m, _) = scorer_fixture();
        let s = Scorer::new(&m);
        let q = s.query(1, &[]);
        let depth = m.taxonomy().depth();
        let full = cascade(&s, &q, &CascadeConfig::uniform(depth, 1.0));
        let half = cascade(&s, &q, &CascadeConfig::uniform(depth, 0.5));
        let tight = cascade(&s, &q, &CascadeConfig::uniform(depth, 0.1));
        assert!(half.scored_nodes < full.scored_nodes);
        assert!(tight.scored_nodes < half.scored_nodes);
        assert!(tight.items.len() < half.items.len());
    }

    #[test]
    fn survivors_are_sorted_and_are_leaves() {
        let (m, _) = scorer_fixture();
        let s = Scorer::new(&m);
        let q = s.query(2, &[]);
        let res = cascade(&s, &q, &CascadeConfig::uniform(m.taxonomy().depth(), 0.4));
        for w in res.items.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for (i, _) in &res.items {
            assert!(m.taxonomy().node_item(m.taxonomy().item_node(*i)) == Some(*i));
        }
    }

    #[test]
    fn per_level_rankings_cover_all_levels() {
        let (m, _) = scorer_fixture();
        let s = Scorer::new(&m);
        let q = s.query(3, &[]);
        let res = cascade(&s, &q, &CascadeConfig::uniform(m.taxonomy().depth(), 0.6));
        assert_eq!(res.per_level.len(), m.taxonomy().depth());
        for (li, level) in res.per_level.iter().enumerate() {
            assert!(!level.is_empty(), "level {} kept nothing", li + 1);
            for (n, _) in level {
                assert_eq!(m.taxonomy().level(*n), li + 1);
            }
        }
    }

    #[test]
    fn leaf_only_config_keeps_upper_levels_full() {
        let (m, _) = scorer_fixture();
        let s = Scorer::new(&m);
        let q = s.query(4, &[]);
        let depth = m.taxonomy().depth();
        let res = cascade(&s, &q, &CascadeConfig::leaf_only(depth, 0.3));
        for (li, level) in res.per_level.iter().enumerate().take(depth - 1) {
            assert_eq!(
                level.len(),
                m.taxonomy().nodes_at_level(li + 1).len(),
                "level {} pruned",
                li + 1
            );
        }
        assert!(res.items.len() < m.num_items());
    }

    #[test]
    fn cascaded_auc_with_full_beam_matches_exact() {
        let (m, _) = scorer_fixture();
        let s = Scorer::new(&m);
        let q = s.query(5, &[]);
        let res = cascade(&s, &q, &CascadeConfig::uniform(m.taxonomy().depth(), 1.0));
        let positives = vec![ItemId(3), ItemId(77)];
        let scores = s.score_all_items(&q);
        let exact = crate::metrics::auc(&scores, &[3, 77]).unwrap();
        let casc = cascaded_auc(&res, m.num_items(), &positives).unwrap();
        assert!(
            (exact - casc).abs() < 1e-9,
            "exact {exact} vs cascaded {casc}"
        );
    }

    #[test]
    fn cascaded_auc_pruned_positive_gets_half_credit() {
        // Craft a result with no survivors: every positive is pruned.
        let res = CascadeResult {
            items: vec![],
            per_level: vec![],
            scored_nodes: 0,
        };
        let got = cascaded_auc(&res, 10, &[ItemId(0)]).unwrap();
        assert!((got - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cascaded_auc_degenerate() {
        let res = CascadeResult {
            items: vec![],
            per_level: vec![],
            scored_nodes: 0,
        };
        assert_eq!(cascaded_auc(&res, 5, &[]), None);
    }

    #[test]
    fn accuracy_improves_with_wider_beam() {
        // Statistical property: averaged over users and positive draws,
        // a wider beam cannot hurt cascaded AUC (it only adds correctly
        // ordered survivors). Check on average.
        let (m, _) = scorer_fixture();
        let s = Scorer::new(&m);
        let depth = m.taxonomy().depth();
        let mut narrow_sum = 0.0;
        let mut wide_sum = 0.0;
        let mut n = 0;
        for u in 0..m.num_users() {
            let q = s.query(u, &[]);
            // Positive = the globally best item for the user: the cascade
            // should find it when the beam widens.
            let best = s.top_k_items(&q, 1, &[])[0].0;
            let narrow = cascade(&s, &q, &CascadeConfig::uniform(depth, 0.05));
            let wide = cascade(&s, &q, &CascadeConfig::uniform(depth, 0.6));
            narrow_sum += cascaded_auc(&narrow, m.num_items(), &[best]).unwrap();
            wide_sum += cascaded_auc(&wide, m.num_items(), &[best]).unwrap();
            n += 1;
        }
        assert!(n > 0);
        assert!(
            wide_sum >= narrow_sum,
            "wide {} < narrow {}",
            wide_sum / n as f64,
            narrow_sum / n as f64
        );
    }
}
