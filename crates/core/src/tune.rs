//! Hyper-parameter selection by cross-validation (paper Sec. 2.2 & 7.1).
//!
//! "The regularization term λ is usually chosen via cross-validation. An
//! exhaustive search is performed over the choices of λ and the best
//! model is picked accordingly." The validation split follows the paper:
//! "the last T transactions in the training dataset are used for
//! cross-validation".

use crate::config::ModelConfig;
use crate::eval::{evaluate, EvalConfig, EvalResult};
use crate::train::TfTrainer;
use taxrec_dataset::{PurchaseLog, PurchaseLogBuilder, Taxonomy};

/// Carve the last `t` transactions of every user out of `train` as a
/// validation set (users with ≤ `t` transactions keep at least one
/// transaction in the inner-train part and contribute what remains).
pub fn holdout_last_t(train: &PurchaseLog, t: usize) -> (PurchaseLog, PurchaseLog) {
    let mut inner = PurchaseLogBuilder::with_capacity(train.num_users());
    let mut valid = PurchaseLogBuilder::with_capacity(train.num_users());
    for (_, hist) in train.iter_users() {
        let n = hist.len();
        let keep = if n > t { n - t } else { n.min(1) };
        inner.push_user(hist[..keep].to_vec());
        valid.push_user(hist[keep..].to_vec());
    }
    (inner.build(), valid.build())
}

/// One grid-search trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The configuration evaluated.
    pub config: ModelConfig,
    /// Validation metrics.
    pub result: EvalResult,
}

/// Result of a grid search: all trials plus the winner by validation AUC.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// Every `(config, metrics)` pair, in evaluation order.
    pub trials: Vec<Trial>,
    /// Index of the best trial in `trials`.
    pub best: usize,
}

impl GridSearchResult {
    /// The winning configuration.
    pub fn best_config(&self) -> &ModelConfig {
        &self.trials[self.best].config
    }

    /// The winning validation metrics.
    pub fn best_result(&self) -> &EvalResult {
        &self.trials[self.best].result
    }
}

/// Exhaustive grid search over `(λ, K)` as in the paper.
///
/// The base config supplies everything else (`U`, `B`, epochs, …). The
/// validation split is `holdout_last_t(train, holdout_t)`; the winner
/// maximises validation AUC. Training uses `threads` workers per trial.
#[allow(clippy::too_many_arguments)]
pub fn grid_search(
    base: &ModelConfig,
    taxonomy: &Taxonomy,
    train: &PurchaseLog,
    lambdas: &[f32],
    factor_grid: &[usize],
    holdout_t: usize,
    seed: u64,
    threads: usize,
) -> GridSearchResult {
    assert!(!lambdas.is_empty() && !factor_grid.is_empty(), "empty grid");
    let (inner, valid) = holdout_last_t(train, holdout_t.max(1));
    let eval_cfg = EvalConfig {
        threads,
        category_level: None,
        cold_start: false,
        ..EvalConfig::default()
    };
    let mut trials = Vec::with_capacity(lambdas.len() * factor_grid.len());
    let mut best = 0usize;
    let mut best_auc = f64::NEG_INFINITY;
    for &lambda in lambdas {
        for &k in factor_grid {
            let cfg = base.clone().with_lambda(lambda).with_factors(k);
            let (model, _) =
                TfTrainer::new(cfg.clone(), taxonomy).fit_parallel(&inner, seed, threads);
            let result = evaluate(&model, &inner, &valid, &eval_cfg);
            let auc = result.auc.unwrap_or(f64::NEG_INFINITY);
            if auc > best_auc {
                best_auc = auc;
                best = trials.len();
            }
            trials.push(Trial {
                config: cfg,
                result,
            });
        }
    }
    GridSearchResult { trials, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};

    fn data() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny().with_users(600), 4)
    }

    #[test]
    fn holdout_moves_last_transactions() {
        let d = data();
        let (inner, valid) = holdout_last_t(&d.train, 1);
        assert_eq!(inner.num_users(), d.train.num_users());
        assert_eq!(valid.num_users(), d.train.num_users());
        for u in 0..d.train.num_users() {
            let n = d.train.user(u).len();
            if n > 1 {
                assert_eq!(inner.user(u).len(), n - 1);
                assert_eq!(valid.user(u).len(), 1);
                assert_eq!(valid.user(u)[0], d.train.user(u)[n - 1]);
            } else {
                assert_eq!(inner.user(u).len(), n);
                assert!(valid.user(u).is_empty());
            }
        }
    }

    #[test]
    fn holdout_preserves_purchases() {
        let d = data();
        let (inner, valid) = holdout_last_t(&d.train, 2);
        assert_eq!(
            inner.num_purchases() + valid.num_purchases(),
            d.train.num_purchases()
        );
    }

    #[test]
    fn grid_search_picks_a_winner() {
        let d = data();
        let base = ModelConfig::tf(4, 0).with_epochs(3);
        let res = grid_search(
            &base,
            &d.taxonomy,
            &d.train,
            &[0.001, 0.05],
            &[4, 8],
            1,
            7,
            2,
        );
        assert_eq!(res.trials.len(), 4);
        let best_auc = res.best_result().auc.unwrap();
        for t in &res.trials {
            assert!(t.result.auc.unwrap() <= best_auc + 1e-12);
        }
        // Winner's config must come from the grid.
        assert!([0.001f32, 0.05].contains(&res.best_config().lambda));
        assert!([4usize, 8].contains(&res.best_config().factors));
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let d = data();
        let _ = grid_search(
            &ModelConfig::tf(2, 0),
            &d.taxonomy,
            &d.train,
            &[],
            &[4],
            1,
            1,
            1,
        );
    }

    #[test]
    fn excessive_lambda_loses() {
        // λ = 10 crushes every factor; a sane λ must win the grid.
        let d = data();
        let base = ModelConfig::tf(4, 0).with_epochs(4);
        let res = grid_search(&base, &d.taxonomy, &d.train, &[0.005, 10.0], &[8], 1, 7, 2);
        assert!(
            (res.best_config().lambda - 0.005).abs() < 1e-9,
            "grid search picked λ = {}",
            res.best_config().lambda
        );
    }
}
