//! The taxonomy-aware latent factor model `TF(U, B)` (Sec. 3).
//!
//! Every taxonomy node `n` carries two offset vectors: `w_n` (long-term)
//! and `w→_n` (next-item). The *effective* factor of a node is the sum
//! of offsets along its root path, truncated to the `U` levels closest to
//! the items (Eq. 1):
//!
//! ```text
//! v_i  = Σ_{m=0}^{U-1} w_{p^m(i)}        v→_i = Σ_{m=0}^{U-1} w→_{p^m(i)}
//! ```
//!
//! The affinity of user `u` to item `j` at time `t` (Eq. 2–3) is
//!
//! ```text
//! s_t(j) = ⟨v^U_u, v_j⟩ + Σ_{n=1}^{B} (α_n/|B_{t−n}|) Σ_{ℓ∈B_{t−n}} ⟨v→_ℓ, v_j⟩
//! ```
//!
//! Both terms are inner products with `v_j`, so scoring factorises
//! through a per-(user, history) **query vector**
//! `q = v^U_u + Σ_n (α_n/|B_{t−n}|) Σ_ℓ v→_ℓ`, and `s_t(j) = ⟨q, v_j⟩`.
//! Everything downstream (training gradients, exhaustive and cascaded
//! inference) is built on that identity.

use crate::config::ModelConfig;
use crate::scoring::Scorer;
use crate::tier::{FoldRecipe, TierHandle, TierStatsSnapshot, UserTier};
use std::sync::Arc;
use taxrec_dataset::Transaction;
use taxrec_factors::{ops, CowMatrix, FactorMatrix};
use taxrec_taxonomy::{ItemId, NodeId, PathTable, Taxonomy};

/// A trained (or freshly initialised) TF(U, B) model.
///
/// Storage is **persistent** (structurally shared): the three factor
/// tables are chunked copy-on-write matrices ([`CowMatrix`]) and the
/// path table and taxonomy sit behind `Arc`s, so `clone()` costs one
/// refcount bump per chunk and the live publish path can derive a
/// successor model in `O(rows touched)` instead of `O(model)`. Mutating
/// a clone (the [`crate::dynamic`] operations) copies only the touched
/// chunks; every other byte stays shared with the models it descended
/// from.
#[derive(Debug, Clone)]
pub struct TfModel {
    pub(crate) taxonomy: Arc<Taxonomy>,
    pub(crate) config: ModelConfig,
    /// `v^U` — one row per user.
    pub(crate) user_factors: CowMatrix,
    /// `w^I` — long-term offset per taxonomy node.
    pub(crate) node_factors: CowMatrix,
    /// `w^I→` — next-item offset per taxonomy node.
    pub(crate) next_factors: CowMatrix,
    /// Item root paths truncated to `U` levels. `Arc`-shared across
    /// clones; [`crate::dynamic`]'s item growth appends via
    /// `Arc::make_mut` (copy-on-write, once per divergence).
    pub(crate) paths: Arc<PathTable>,
    /// Nodes at level ≥ `cutoff_level` carry factors; shallower nodes are
    /// outside the configured `taxonomyUpdateLevels` and contribute 0.
    pub(crate) cutoff_level: usize,
    /// When set, user factors live in a shared hot/cold [`UserTier`]
    /// instead of `user_factors` (which is then empty); the handle
    /// freezes this epoch's user count over the growing store.
    pub(crate) user_tier: Option<TierHandle>,
}

impl TfModel {
    /// Gaussian-initialise a model for `num_users` users over `taxonomy`.
    ///
    /// # Panics
    /// If the config fails [`ModelConfig::validate`].
    pub fn init(
        config: ModelConfig,
        taxonomy: Arc<Taxonomy>,
        num_users: usize,
        seed: u64,
    ) -> TfModel {
        if let Err(e) = config.validate() {
            panic!("invalid ModelConfig: {e}");
        }
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let k = config.factors;
        let n_nodes = taxonomy.num_nodes();
        // Users break symmetry with Gaussian noise; node offsets start at
        // the prior mean 0. Zero offsets matter for cold start: an item
        // never seen in training keeps w = 0, so its effective factor is
        // exactly its super-category's — the paper's Fig. 7(c) estimate
        // ("we use the item's immediate super-category as an estimate for
        // its factor") — instead of category + noise.
        let user_factors = CowMatrix::from_dense(FactorMatrix::gaussian(
            num_users,
            k,
            config.init_sigma,
            &mut rng,
        ));
        let (node_factors, next_factors) = if config.node_init_sigma > 0.0 {
            (
                CowMatrix::from_dense(FactorMatrix::gaussian(
                    n_nodes,
                    k,
                    config.node_init_sigma,
                    &mut rng,
                )),
                CowMatrix::from_dense(FactorMatrix::gaussian(
                    n_nodes,
                    k,
                    config.node_init_sigma,
                    &mut rng,
                )),
            )
        } else {
            (CowMatrix::zeros(n_nodes, k), CowMatrix::zeros(n_nodes, k))
        };
        let paths = Arc::new(PathTable::build(&taxonomy, config.taxonomy_update_levels));
        let cutoff_level = cutoff_for(&taxonomy, config.taxonomy_update_levels);
        TfModel {
            taxonomy,
            config,
            user_factors,
            node_factors,
            next_factors,
            paths,
            cutoff_level,
            user_tier: None,
        }
    }

    /// The taxonomy the model is bound to.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Shared handle to the taxonomy.
    pub fn taxonomy_arc(&self) -> Arc<Taxonomy> {
        Arc::clone(&self.taxonomy)
    }

    /// The model's hyper-parameters.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of users the model covers. On a tiered model this is the
    /// epoch's frozen row count, not the (still growing) store's.
    pub fn num_users(&self) -> usize {
        match &self.user_tier {
            Some(h) => h.rows,
            None => self.user_factors.rows(),
        }
    }

    /// Number of items (taxonomy leaves).
    pub fn num_items(&self) -> usize {
        self.taxonomy.num_items()
    }

    /// Factor dimensionality `K`.
    pub fn k(&self) -> usize {
        self.config.factors
    }

    /// Level cutoff implied by `taxonomyUpdateLevels` (nodes at levels
    /// ≥ cutoff carry factors).
    pub fn cutoff_level(&self) -> usize {
        self.cutoff_level
    }

    /// The truncated item root paths.
    pub fn paths(&self) -> &PathTable {
        &self.paths
    }

    /// User factor row (resident models only).
    ///
    /// # Panics
    /// On a tiered model, where rows are not borrowable — use
    /// [`copy_user_factor`](Self::copy_user_factor).
    pub fn user_factor(&self, user: usize) -> &[f32] {
        assert!(
            self.user_tier.is_none(),
            "user factors are tiered; use copy_user_factor"
        );
        self.user_factors.row(user)
    }

    /// Copy `user`'s factor into `out`. Resident models copy from the
    /// in-memory matrix; tiered models read through the hot/cold store,
    /// faulting the row in (cold read or deterministic re-fold) on a
    /// miss. Either path yields bit-identical bytes.
    pub fn copy_user_factor(&self, user: usize, out: &mut [f32]) {
        match &self.user_tier {
            None => out.copy_from_slice(self.user_factors.row(user)),
            Some(h) => {
                assert!(user < h.rows, "user {user} out of {} rows", h.rows);
                h.tier.copy_row(user, out, |r| {
                    let scorer = Scorer::new(self);
                    crate::dynamic::fold_in_user_with_catalog(
                        &scorer, &r.history, r.steps, r.seed, r.n_items,
                    )
                });
            }
        }
    }

    /// Overwrite `user`'s factor. Resident models write the COW matrix
    /// (copying the touched chunk); tiered models write the shared store
    /// together with the recipe that reconstructs the row after
    /// eviction.
    pub(crate) fn set_user_factor(&mut self, user: usize, factor: &[f32], recipe: FoldRecipe) {
        match &self.user_tier {
            None => self.user_factors.row_mut(user).copy_from_slice(factor),
            Some(h) => {
                assert!(user < h.rows, "user {user} out of {} rows", h.rows);
                h.tier.set_row(user, factor, recipe);
            }
        }
    }

    /// Move this model's user factors into a shared hot/cold tier built
    /// by [`UserTier::build`] from this same matrix. The resident matrix
    /// is dropped; reads go through [`copy_user_factor`](Self::copy_user_factor).
    ///
    /// # Panics
    /// If the tier's `K` or row count disagree with the model.
    pub fn attach_user_tier(&mut self, tier: Arc<UserTier>) {
        assert_eq!(tier.k(), self.k(), "tier K mismatch");
        assert_eq!(
            tier.total_rows(),
            self.user_factors.rows(),
            "tier row-count mismatch"
        );
        let rows = self.user_factors.rows();
        self.user_factors = CowMatrix::zeros(0, self.k());
        self.user_tier = Some(TierHandle { tier, rows });
    }

    /// Build a hot/cold tier from this model's own resident user matrix
    /// (cold file at `path`, `budget` hot rows) and attach it — the
    /// one-call form of [`UserTier::build`] + [`attach_user_tier`](Self::attach_user_tier)
    /// for callers outside the crate, which cannot reach the raw matrix.
    pub fn build_user_tier(
        &mut self,
        path: &std::path::Path,
        budget: usize,
        registry: &crate::MetricsRegistry,
    ) -> std::io::Result<()> {
        let tier = UserTier::build(path, &self.user_factors, budget, registry)?;
        self.attach_user_tier(tier);
        Ok(())
    }

    /// Whether user factors live in a hot/cold tier.
    pub fn user_tier_attached(&self) -> bool {
        self.user_tier.is_some()
    }

    /// The attached tier's counters and sizes, if any.
    pub fn user_tier_stats(&self) -> Option<TierStatsSnapshot> {
        self.user_tier.as_ref().map(|h| h.tier.stats_snapshot())
    }

    /// Materialise the full user matrix — resident models clone (cheap,
    /// structural sharing); tiered models reconstruct every row through
    /// the tier without perturbing the eviction state, so a snapshot of
    /// tiered state is byte-identical to its untiered twin.
    pub(crate) fn materialize_user_matrix(&self) -> CowMatrix {
        let Some(h) = &self.user_tier else {
            return self.user_factors.clone();
        };
        let scorer = Scorer::new(self);
        let mut m = CowMatrix::zeros(0, self.k());
        let mut buf = vec![0.0f32; self.k()];
        for u in 0..h.rows {
            h.tier.peek_row(u, &mut buf, |r| {
                crate::dynamic::fold_in_user_with_catalog(
                    &scorer, &r.history, r.steps, r.seed, r.n_items,
                )
            });
            m.push_row(&buf);
        }
        m
    }

    /// Raw long-term offset of a node (`w_n`, *not* the effective factor).
    pub fn node_offset(&self, node: NodeId) -> &[f32] {
        self.node_factors.row(node.index())
    }

    /// Raw next-item offset of a node (`w→_n`).
    pub fn next_offset(&self, node: NodeId) -> &[f32] {
        self.next_factors.row(node.index())
    }

    /// Effective long-term item factor `v_i` (Eq. 1), accumulated into `out`.
    pub fn item_factor_into(&self, item: ItemId, out: &mut [f32]) {
        out.fill(0.0);
        for &n in self.paths.path(item) {
            ops::add_assign(self.node_factors.row(n as usize), out);
        }
    }

    /// Effective next-item factor `v→_i`, accumulated into `out`.
    pub fn next_item_factor_into(&self, item: ItemId, out: &mut [f32]) {
        out.fill(0.0);
        for &n in self.paths.path(item) {
            ops::add_assign(self.next_factors.row(n as usize), out);
        }
    }

    /// Effective long-term factor of *any* node (used for category-level
    /// ranking and cascaded inference): sum of offsets from `node` to the
    /// cutoff level.
    pub fn node_factor_into(&self, node: NodeId, out: &mut [f32]) {
        out.fill(0.0);
        for n in self.taxonomy.root_path(node) {
            if self.taxonomy.level(n) >= self.cutoff_level {
                ops::add_assign(self.node_factors.row(n.index()), out);
            }
        }
    }

    /// The query vector `q` for `user` given their transaction history
    /// (`history` is the user's past baskets, oldest first; the Markov
    /// term conditions on the last `B` of them). See the module docs.
    pub fn query_into(&self, user: usize, history: &[Transaction], out: &mut [f32]) {
        self.copy_user_factor(user, out);
        if self.config.max_prev_transactions == 0 {
            return;
        }
        let mut vnext = vec![0.0f32; self.k()];
        for n in 1..=self.config.max_prev_transactions {
            if n > history.len() {
                break;
            }
            let basket = &history[history.len() - n];
            if basket.is_empty() {
                continue;
            }
            let weight = self.config.markov_weight(n) / basket.len() as f32;
            for &l in basket {
                self.next_item_factor_into(l, &mut vnext);
                ops::axpy(weight, &vnext, out);
            }
        }
    }

    /// Affinity `s_t(j) = ⟨q, v_j⟩` of a prepared query to one item.
    pub fn score_item(&self, query: &[f32], item: ItemId) -> f32 {
        let mut v = vec![0.0f32; self.k()];
        self.item_factor_into(item, &mut v);
        ops::dot(query, &v)
    }

    /// Materialise the effective factors of **all nodes** for the given
    /// offset matrix, in one forward pass (node ids are topological, so
    /// `eff[n] = eff[parent(n)] + w_n` with the cutoff applied).
    pub(crate) fn effective_all_nodes(&self, offsets: &CowMatrix) -> FactorMatrix {
        let k = self.k();
        let tax = &*self.taxonomy;
        let mut eff = FactorMatrix::zeros(tax.num_nodes(), k);
        for idx in 0..tax.num_nodes() {
            let node = NodeId(idx as u32);
            let include_self = tax.level(node) >= self.cutoff_level;
            if let Some(p) = tax.parent(node) {
                let (row, parent_row) = eff.rows_mut2(idx, p.index());
                row.copy_from_slice(parent_row);
            }
            if include_self {
                let row = eff.row_mut(idx);
                for (v, w) in row.iter_mut().zip(offsets.row(idx)) {
                    *v += w;
                }
            }
        }
        eff
    }

    /// Convenience: exhaustively score all items for `(user, history)`
    /// and return the top `k` as `(item, score)`, best first.
    ///
    /// Builds a throw-away [`Scorer`]; evaluation loops should build one
    /// `Scorer` and reuse it across users.
    pub fn recommend_top_k(
        &self,
        user: usize,
        history: &[Transaction],
        k: usize,
    ) -> Vec<(ItemId, f32)> {
        let scorer = Scorer::new(self);
        let mut q = vec![0.0f32; self.k()];
        self.query_into(user, history, &mut q);
        scorer.top_k_items(&q, k, &[])
    }

    /// The three chunked factor tables in `(user, node, next)` order —
    /// the storage-sharing diagnostics surface used by the COW tests
    /// and the live publish counters.
    pub fn cow_matrices(&self) -> [&CowMatrix; 3] {
        [&self.user_factors, &self.node_factors, &self.next_factors]
    }

    /// How much factor storage this model shares with `prev`, by
    /// pointer: `(shared, unshared)` chunk counts summed over all three
    /// matrices. After a live publish, `unshared` is exactly the chunks
    /// that batch of events had to copy or append — the proof that the
    /// publish was `O(change)`.
    pub fn chunk_sharing_with(&self, prev: &TfModel) -> (u64, u64) {
        self.cow_matrices()
            .iter()
            .zip(prev.cow_matrices())
            .map(|(a, b)| a.shared_chunks_with(b))
            .fold((0, 0), |(s, c), (ds, dc)| (s + ds, c + dc))
    }

    /// A fully independent copy: every factor chunk and the path table
    /// are reallocated; nothing is shared with `self` (the taxonomy
    /// stays `Arc`-shared — it is immutable and replaced, never written,
    /// on growth). This is what a publish used to cost before the
    /// copy-on-write storage; benches use it as the O(model) baseline
    /// and the COW property tests as an isolation control.
    pub fn deep_clone(&self) -> TfModel {
        TfModel {
            taxonomy: Arc::clone(&self.taxonomy),
            config: self.config.clone(),
            user_factors: self.user_factors.deep_clone(),
            node_factors: self.node_factors.deep_clone(),
            next_factors: self.next_factors.deep_clone(),
            paths: Arc::new(PathTable::clone(&self.paths)),
            cutoff_level: self.cutoff_level,
            user_tier: self.user_tier.clone(),
        }
    }
}

/// Level threshold implied by `taxonomyUpdateLevels`: with items at depth
/// `D`, `U` levels from the bottom cover levels `D, D-1, …, D-U+1`.
pub(crate) fn cutoff_for(tax: &Taxonomy, update_levels: usize) -> usize {
    tax.depth().saturating_sub(update_levels.max(1) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taxrec_taxonomy::{TaxonomyGenerator, TaxonomyShape};

    pub(crate) fn small_tax() -> Arc<Taxonomy> {
        let shape = TaxonomyShape {
            level_sizes: vec![3, 6, 12],
            num_items: 100,
            item_skew: 0.5,
        };
        Arc::new(
            TaxonomyGenerator::new(shape)
                .generate(&mut StdRng::seed_from_u64(5))
                .taxonomy,
        )
    }

    fn model(u: usize, b: usize) -> TfModel {
        // Gaussian node init: these structural tests compare path sums,
        // which would be trivially zero otherwise.
        TfModel::init(
            ModelConfig::tf(u, b)
                .with_factors(8)
                .with_node_init_sigma(0.1),
            small_tax(),
            20,
            9,
        )
    }

    #[test]
    fn init_shapes() {
        let m = model(4, 1);
        assert_eq!(m.num_users(), 20);
        assert_eq!(m.num_items(), 100);
        assert_eq!(m.k(), 8);
        assert_eq!(m.user_factors.rows(), 20);
        assert_eq!(m.node_factors.rows(), m.taxonomy.num_nodes());
        assert_eq!(m.next_factors.rows(), m.taxonomy.num_nodes());
    }

    #[test]
    fn cutoff_levels() {
        let tax = small_tax(); // depth 4 (root + 3 cat levels + items)
        assert_eq!(tax.depth(), 4);
        assert_eq!(cutoff_for(&tax, 1), 4);
        assert_eq!(cutoff_for(&tax, 4), 1);
        assert_eq!(cutoff_for(&tax, 5), 0);
        assert_eq!(cutoff_for(&tax, 99), 0);
    }

    #[test]
    fn item_factor_is_path_sum() {
        let m = model(4, 0);
        let item = ItemId(3);
        let mut expect = vec![0.0f32; m.k()];
        for n in m.taxonomy.root_path(m.taxonomy.item_node(item)) {
            if m.taxonomy.level(n) >= m.cutoff_level {
                ops::add_assign(m.node_factors.row(n.index()), &mut expect);
            }
        }
        let mut got = vec![0.0f32; m.k()];
        m.item_factor_into(item, &mut got);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn u1_item_factor_is_leaf_offset_only() {
        let m = model(1, 0);
        let item = ItemId(7);
        let mut got = vec![0.0f32; m.k()];
        m.item_factor_into(item, &mut got);
        assert_eq!(
            got.as_slice(),
            m.node_factors.row(m.taxonomy.item_node(item).index())
        );
    }

    #[test]
    fn node_factor_matches_item_factor_at_leaf() {
        let m = model(4, 0);
        let item = ItemId(11);
        let node = m.taxonomy.item_node(item);
        let mut a = vec![0.0f32; m.k()];
        let mut b = vec![0.0f32; m.k()];
        m.item_factor_into(item, &mut a);
        m.node_factor_into(node, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn query_without_markov_is_user_factor() {
        let m = model(4, 0);
        let mut q = vec![0.0f32; m.k()];
        m.query_into(3, &[vec![ItemId(0)], vec![ItemId(1)]], &mut q);
        assert_eq!(q.as_slice(), m.user_factor(3));
    }

    #[test]
    fn query_with_markov_adds_next_factors() {
        let m = model(4, 1);
        let hist = vec![vec![ItemId(2), ItemId(5)]];
        let mut q = vec![0.0f32; m.k()];
        m.query_into(0, &hist, &mut q);
        // Expected: v_u + (α₁/2)(v→_2 + v→_5)
        let mut expect = m.user_factor(0).to_vec();
        let w = m.config.markov_weight(1) / 2.0;
        let mut tmp = vec![0.0f32; m.k()];
        for &i in &[ItemId(2), ItemId(5)] {
            m.next_item_factor_into(i, &mut tmp);
            ops::axpy(w, &tmp, &mut expect);
        }
        for (a, b) in q.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn higher_order_uses_older_baskets_with_decay() {
        let m = model(4, 2);
        let hist = vec![vec![ItemId(1)], vec![ItemId(2)]];
        let mut q2 = vec![0.0f32; m.k()];
        m.query_into(0, &hist, &mut q2);
        // Dropping the older basket must change the query (it contributes
        // with weight α₂ > 0).
        let mut q1 = vec![0.0f32; m.k()];
        m.query_into(0, &hist[1..], &mut q1);
        assert_ne!(q1, q2);
    }

    #[test]
    fn effective_all_nodes_matches_per_item() {
        let m = model(3, 0);
        let eff = m.effective_all_nodes(&m.node_factors);
        let mut buf = vec![0.0f32; m.k()];
        for item in m.taxonomy.item_ids() {
            m.item_factor_into(item, &mut buf);
            let row = eff.row(m.taxonomy.item_node(item).index());
            for (a, b) in buf.iter().zip(row) {
                assert!((a - b).abs() < 1e-5, "item {item}");
            }
        }
    }

    #[test]
    fn effective_all_nodes_matches_node_factor() {
        let m = model(4, 0);
        let eff = m.effective_all_nodes(&m.node_factors);
        let mut buf = vec![0.0f32; m.k()];
        for node in m.taxonomy.node_ids() {
            m.node_factor_into(node, &mut buf);
            let row = eff.row(node.index());
            for (a, b) in buf.iter().zip(row) {
                assert!((a - b).abs() < 1e-5, "node {node}");
            }
        }
    }

    #[test]
    fn score_item_is_query_dot_factor() {
        let m = model(4, 1);
        let hist = vec![vec![ItemId(9)]];
        let mut q = vec![0.0f32; m.k()];
        m.query_into(2, &hist, &mut q);
        let mut v = vec![0.0f32; m.k()];
        m.item_factor_into(ItemId(4), &mut v);
        assert!((m.score_item(&q, ItemId(4)) - ops::dot(&q, &v)).abs() < 1e-6);
    }

    #[test]
    fn recommend_returns_k_distinct_items() {
        let m = model(4, 0);
        let recs = m.recommend_top_k(0, &[], 10);
        assert_eq!(recs.len(), 10);
        let mut items: Vec<ItemId> = recs.iter().map(|r| r.0).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 10);
        // Scores descending.
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "invalid ModelConfig")]
    fn invalid_config_panics() {
        let _ = TfModel::init(ModelConfig::default().with_factors(0), small_tax(), 5, 1);
    }
}
