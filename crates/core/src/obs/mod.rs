//! Observability: the unified metrics registry and request tracing.
//!
//! Everything the system measures flows through one [`Obs`] bundle:
//!
//! - [`MetricsRegistry`] — named counter/gauge/histogram families with
//!   static labels. The HTTP layer, the live applier, and the per-shard
//!   scan kernels all register here, and `GET /metrics` renders the
//!   whole catalog as Prometheus text exposition.
//! - [`Tracer`] — request-scoped structured spans for the recommend
//!   pipeline (per-shard scan → merge → rescore → framing) and the
//!   write path (validate/apply → WAL append → fsync → publish),
//!   buffered in a lock-free ring with probabilistic sampling plus
//!   always-capture-above-threshold slow capture; served by
//!   `GET /live/trace?n=K`.
//!
//! Both are hand-rolled in the same idiom as [`crate::histogram`]:
//! relaxed atomics on the hot path, no locks while serving, no
//! external dependencies. See `docs/guide/observability.md` for the
//! metric catalog, trace schema, and scrape configuration.

pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, HistogramHandle, MetricKind, MetricsRegistry, ScanMetrics};
pub use trace::{SampleReason, SpanRec, TraceBuilder, TraceRecord, Tracer, TRACE_RING_SLOTS};

use std::sync::Arc;
use std::time::Instant;

/// The process-wide observability bundle: one registry, one tracer,
/// and the process start time (for `uptime_seconds`). Shared by `Arc`
/// between the live subsystem and the HTTP layer; the default
/// instance has tracing disabled, so tests and benches that don't
/// care pay one relaxed load per request.
#[derive(Debug)]
pub struct Obs {
    registry: MetricsRegistry,
    tracer: Tracer,
    started: Instant,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs {
            registry: MetricsRegistry::new(),
            tracer: Tracer::new(),
            started: Instant::now(),
        }
    }
}

impl Obs {
    /// Fresh bundle with tracing disabled.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Fresh shared bundle, tracing configured (see
    /// [`Tracer::configure`]).
    pub fn shared_with_tracing(sample_rate: f64, slow_ms: u64) -> Arc<Obs> {
        let obs = Obs::new();
        obs.tracer.configure(sample_rate, slow_ms);
        Arc::new(obs)
    }

    /// The metric catalog.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The trace collector.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Seconds since this bundle was created (process uptime for all
    /// practical purposes — the bundle is built at startup).
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_has_tracing_off() {
        let obs = Obs::new();
        assert!(!obs.tracer().enabled());
        assert!(obs.tracer().start("recommend").is_none());
    }

    #[test]
    fn shared_with_tracing_enables_sampling() {
        let obs = Obs::shared_with_tracing(1.0, 250);
        assert!(obs.tracer().enabled());
        let b = obs.tracer().start("recommend").unwrap();
        obs.tracer().finish(b);
        assert_eq!(obs.tracer().captured(), 1);
    }
}
