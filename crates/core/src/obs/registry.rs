//! The unified metrics registry: named counter/gauge/histogram
//! families with static labels, rendered as Prometheus text exposition.
//!
//! Same idiom as [`crate::histogram`]: handles are `Arc`-shared
//! atomics, recording is a relaxed `fetch_add` with no locks on the hot
//! path. The registry itself holds a `Mutex`ed catalog of families, but
//! that lock is taken only at registration (startup) and render
//! (scrape) time — never while serving.
//!
//! Every latency family is a [`crate::histogram::Histogram`] under the
//! hood, so quantiles have exactly one implementation: the cumulative
//! bucket walk in [`HistogramSnapshot::quantile_us`].

use crate::histogram::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a family's series measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count.
    Counter,
    /// Settable value.
    Gauge,
    /// Latency distribution ([`crate::histogram::Histogram`] buckets).
    Histogram,
}

impl MetricKind {
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotone counter handle. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add one (e.g. a connection opened).
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one, saturating at zero (e.g. a connection closed).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket counts plus a full-resolution sum, so the Prometheus
/// exposition can emit `_sum` without truncating sub-µs samples.
#[derive(Debug, Default)]
struct TimedHistogram {
    hist: Histogram,
    sum_ns: AtomicU64,
}

/// A latency-histogram handle backed by [`crate::histogram::Histogram`].
/// Cloning shares the underlying buckets.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<TimedHistogram>);

impl HistogramHandle {
    /// Record one latency.
    pub fn record(&self, d: Duration) {
        self.0.hist.record(d);
        self.0
            .sum_ns
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Bucket snapshot — the single source of truth for quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.hist.snapshot()
    }

    /// The `p`-quantile in µs (see [`HistogramSnapshot::quantile_us`]).
    pub fn quantile_us(&self, p: f64) -> u64 {
        self.snapshot().quantile_us(p)
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.snapshot().total()
    }

    /// Sum of all recorded latencies, µs (accumulated in ns internally).
    pub fn sum_us(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed) / 1_000
    }

    fn sum_seconds(&self) -> f64 {
        self.0.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }
}

#[derive(Debug, Clone)]
enum SeriesValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// The process-wide metric catalog. One instance is shared by the HTTP
/// layer, the live applier, and the scan instrumentation; `GET
/// /metrics` renders it with [`MetricsRegistry::render_prometheus`].
///
/// Registration is idempotent: asking for a `(name, labels)` pair that
/// already exists returns a handle to the same series, so components
/// that restart (tests, successive engines) cannot double-count.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels, || {
            SeriesValue::Counter(Counter::default())
        }) {
            SeriesValue::Counter(c) => c,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            SeriesValue::Gauge(Gauge::default())
        }) {
            SeriesValue::Gauge(g) => g,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Register (or look up) a latency-histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            SeriesValue::Histogram(HistogramHandle::default())
        }) {
            SeriesValue::Histogram(h) => h,
            _ => unreachable!("kind checked by series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> SeriesValue,
    ) -> SeriesValue {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} registered twice with different kinds"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return existing.value.clone();
        }
        let value = make();
        family.series.push(Series {
            labels,
            value: value.clone(),
        });
        value
    }

    /// Render the whole catalog as Prometheus text exposition (v0.0.4):
    /// `# HELP` / `# TYPE` comments, then one sample line per series —
    /// histograms expand to cumulative `_bucket{le=...}` lines (bucket
    /// upper bounds in seconds) plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for f in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.prom_type()));
            for s in &f.series {
                match &s.value {
                    SeriesValue::Counter(c) => {
                        out.push_str(&sample(&f.name, &s.labels, None, &c.get().to_string()));
                    }
                    SeriesValue::Gauge(g) => {
                        out.push_str(&sample(&f.name, &s.labels, None, &g.get().to_string()));
                    }
                    SeriesValue::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, &c) in snap.counts.iter().enumerate() {
                            cum += c;
                            // Bucket i counts [2^i, 2^(i+1)) µs; the
                            // `le` bound is the upper edge in seconds.
                            let le = (1u64 << (i + 1)) as f64 / 1e6;
                            out.push_str(&sample(
                                &format!("{}_bucket", f.name),
                                &s.labels,
                                Some(("le", &format_le(le))),
                                &cum.to_string(),
                            ));
                        }
                        out.push_str(&sample(
                            &format!("{}_bucket", f.name),
                            &s.labels,
                            Some(("le", "+Inf")),
                            &cum.to_string(),
                        ));
                        out.push_str(&sample(
                            &format!("{}_sum", f.name),
                            &s.labels,
                            None,
                            &format!("{}", h.sum_seconds()),
                        ));
                        out.push_str(&sample(
                            &format!("{}_count", f.name),
                            &s.labels,
                            None,
                            &cum.to_string(),
                        ));
                        debug_assert_eq!(snap.counts.len(), HISTOGRAM_BUCKETS);
                    }
                }
            }
        }
        out
    }
}

/// One exposition sample line: `name{labels} value`.
fn sample(
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{}}} {value}\n", pairs.join(","))
    }
}

/// `le` bounds render without exponent notation so any text-format
/// consumer parses them (0.000002, not 2e-6).
fn format_le(seconds: f64) -> String {
    let s = format!("{seconds:.9}");
    let s = s.trim_end_matches('0');
    let s = s.trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*`
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Per-shard scan instrumentation: rows scanned, blocks scored, and
/// cumulative scan time per catalog shard, registered as labelled
/// counter families. One instance is created when the live subsystem
/// builds its first engine and carried (by `Arc`) across every
/// successor epoch, so counters survive publishes.
#[derive(Debug)]
pub struct ScanMetrics {
    shards: Vec<ShardScanCounters>,
    quant_scans: Counter,
    quant_sufficient: Counter,
    quant_insufficient: Counter,
}

#[derive(Debug)]
struct ShardScanCounters {
    rows: Counter,
    blocks: Counter,
    busy_us: Counter,
}

impl ScanMetrics {
    /// Register `shards` per-shard counter triples into `registry`.
    pub fn register(registry: &MetricsRegistry, shards: usize) -> Arc<ScanMetrics> {
        let shards = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                let labels = [("shard", shard.as_str())];
                ShardScanCounters {
                    rows: registry.counter(
                        "taxrec_scan_rows_total",
                        "Catalog rows scored by the blocked exhaustive scan, per shard",
                        &labels,
                    ),
                    blocks: registry.counter(
                        "taxrec_scan_blocks_total",
                        "SCORE_BLOCK-sized blocks scored, per shard",
                        &labels,
                    ),
                    busy_us: registry.counter(
                        "taxrec_scan_busy_us_total",
                        "Cumulative per-shard scan time, microseconds",
                        &labels,
                    ),
                }
            })
            .collect();
        Arc::new(ScanMetrics {
            shards,
            quant_scans: registry.counter(
                "taxrec_quant_pool_scans_total",
                "Quantized first-pass shard scans served",
                &[],
            ),
            quant_sufficient: registry.counter(
                "taxrec_quant_pool_sufficient_total",
                "Quantized scans whose exact-rescore work stayed within the pool budget",
                &[],
            ),
            quant_insufficient: registry.counter(
                "taxrec_quant_pool_insufficient_total",
                "Quantized scans whose exact-rescore work overran the pool budget",
                &[],
            ),
        })
    }

    /// Register the `taxrec_scan_kernel` info metric: value 1 on the
    /// series labelled with the active f32 kernel's name.
    pub fn register_kernel_info(registry: &MetricsRegistry, kernel: &str) {
        registry
            .gauge(
                "taxrec_scan_kernel",
                "Active f32 scan kernel (info metric: 1 on the labelled series)",
                &[("kernel", kernel)],
            )
            .set(1);
    }

    /// Record one quantized first-pass scan and whether its exact-rescore
    /// work stayed within the configured pool budget.
    pub fn record_quant(&self, sufficient: bool) {
        self.quant_scans.inc();
        if sufficient {
            self.quant_sufficient.inc();
        } else {
            self.quant_insufficient.inc();
        }
    }

    /// Quantized first-pass scans recorded.
    pub fn quant_scans(&self) -> u64 {
        self.quant_scans.get()
    }

    /// Quantized scans that fell back to the exact f32 path.
    pub fn quant_insufficient(&self) -> u64 {
        self.quant_insufficient.get()
    }

    /// Record one shard scan. Out-of-range indices (an engine rebuilt
    /// with a different layout than the metrics were registered for)
    /// are ignored rather than miscounted.
    pub fn record(&self, shard: usize, rows: u64, blocks: u64, took: Duration) {
        if let Some(s) = self.shards.get(shard) {
            s.rows.add(rows);
            s.blocks.add(blocks);
            s.busy_us.add(took.as_micros().min(u64::MAX as u128) as u64);
        }
    }

    /// Shard count the counters were registered for.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rows scanned across all shards (tests, reporting).
    pub fn rows_total(&self) -> u64 {
        self.shards.iter().map(|s| s.rows.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("taxrec_test_total", "help", &[("route", "/x")]);
        let b = reg.counter("taxrec_test_total", "help", &[("route", "/x")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same (name, labels) must share the atomic");
        let other = reg.counter("taxrec_test_total", "help", &[("route", "/y")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn prometheus_rendering_escapes_and_accumulates() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("taxrec_req_total", "requests\nserved \\ total", &[]);
        c.add(7);
        let g = reg.gauge("taxrec_workers", "workers", &[("pool", "a\"b\\c")]);
        g.set(4);
        let h = reg.histogram("taxrec_lat_seconds", "latency", &[]);
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(3));
        let text = reg.render_prometheus();
        assert!(
            text.contains("# HELP taxrec_req_total requests\\nserved \\\\ total"),
            "{text}"
        );
        assert!(text.contains("# TYPE taxrec_req_total counter"), "{text}");
        assert!(text.contains("taxrec_req_total 7"), "{text}");
        assert!(
            text.contains("taxrec_workers{pool=\"a\\\"b\\\\c\"} 4"),
            "{text}"
        );
        // Histogram: cumulative buckets, +Inf, sum and count.
        assert!(
            text.contains("taxrec_lat_seconds_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("taxrec_lat_seconds_count 2"), "{text}");
        assert!(text.contains("taxrec_lat_seconds_sum 0.000103"), "{text}");
        // The 100 µs sample lands in the [64,128) µs bucket: every le
        // at or above 128 µs (0.000128 s) must already include it.
        assert!(
            text.contains("taxrec_lat_seconds_bucket{le=\"0.000128\"} 2"),
            "{text}"
        );
        // No exponent notation in le bounds.
        assert!(!text.contains("le=\"2e"), "{text}");
    }

    #[test]
    fn histogram_quantiles_come_from_core_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("taxrec_q_seconds", "q", &[]);
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.quantile_us(0.50), 128);
        assert_eq!(h.quantile_us(1.0), 65536);
        assert_eq!(h.count(), 100);
        assert!(h.sum_us() >= 99 * 100 + 50_000);
    }

    #[test]
    fn scan_metrics_record_per_shard() {
        let reg = MetricsRegistry::new();
        let sm = ScanMetrics::register(&reg, 2);
        sm.record(0, 100, 2, Duration::from_micros(5));
        sm.record(1, 50, 1, Duration::from_micros(3));
        sm.record(9, 1, 1, Duration::from_micros(1)); // ignored
        assert_eq!(sm.rows_total(), 150);
        let text = reg.render_prometheus();
        assert!(
            text.contains("taxrec_scan_rows_total{shard=\"0\"} 100"),
            "{text}"
        );
        assert!(
            text.contains("taxrec_scan_rows_total{shard=\"1\"} 50"),
            "{text}"
        );
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("taxrec_http_requests_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("1bad"));
        assert!(!valid_metric_name("has space"));
        assert!(valid_label_name("route"));
        assert!(!valid_label_name("le bad"));
    }
}
