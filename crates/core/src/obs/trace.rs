//! Request-scoped structured tracing.
//!
//! A [`Tracer`] hands out [`TraceBuilder`]s; each builder records
//! named spans (monotonic-clock offsets from the request start, with
//! parent ids) and, at [`Tracer::finish`], the completed trace is
//! published into a lock-free fixed-size ring journal if it was either
//! probabilistically sampled or slower than the slow-capture
//! threshold. Readers ([`Tracer::recent`]) drain the ring without
//! blocking writers.
//!
//! The ring is an array of `AtomicPtr<TraceRecord>` slots. Writers
//! `swap` a freshly boxed record into the next slot (dropping whatever
//! was there); readers `swap` a slot out, clone it, and try to CAS it
//! back. If a writer raced in between, the reader simply drops the
//! older record — losing one entry under contention is an acceptable
//! trade for a journal that never blocks the request path.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of trace slots in the ring journal.
pub const TRACE_RING_SLOTS: usize = 256;

/// One completed span inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span id, unique within the trace. The root span is id 1.
    pub id: u32,
    /// Parent span id; `None` for the root.
    pub parent: Option<u32>,
    /// Stage name (e.g. `"scan[0]"`, `"merge"`, `"wal_fsync"`).
    pub name: String,
    /// Offset from the trace start, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
}

/// Why a trace was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleReason {
    /// Chosen by the probabilistic sampler.
    Sampled,
    /// Exceeded the slow-capture threshold.
    Slow,
}

impl SampleReason {
    /// Stable string form used in the JSON exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            SampleReason::Sampled => "sampled",
            SampleReason::Slow => "slow",
        }
    }
}

/// One completed, captured trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone capture sequence number (process-wide per tracer).
    pub seq: u64,
    /// Request kind (e.g. `"recommend"`, `"apply"`).
    pub kind: &'static str,
    /// End-to-end duration of the root span, microseconds.
    pub total_us: u64,
    /// Why this trace was captured.
    pub reason: SampleReason,
    /// Child spans, in completion order. The implicit root span has
    /// id 1, `start_us == 0`, `dur_us == total_us`.
    pub spans: Vec<SpanRec>,
}

/// In-flight trace under construction. Obtained from
/// [`Tracer::start`]; record stages with [`TraceBuilder::close`] and
/// hand the builder back to [`Tracer::finish`].
#[derive(Debug)]
pub struct TraceBuilder {
    t0: Instant,
    kind: &'static str,
    spans: Vec<SpanRec>,
    next_id: u32,
    sampled: bool,
}

impl TraceBuilder {
    /// Monotonic offset from the trace start, microseconds. Use the
    /// returned value as the `start` argument of a later
    /// [`TraceBuilder::close`].
    pub fn clock(&self) -> u64 {
        self.t0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Record a completed stage that began at `start` (a
    /// [`TraceBuilder::clock`] reading) and ends now. The span's
    /// parent is the root span. Returns the new span's id.
    pub fn close(&mut self, name: &str, start: u64) -> u32 {
        let end = self.clock();
        let id = self.next_id;
        self.next_id += 1;
        self.spans.push(SpanRec {
            id,
            parent: Some(1),
            name: name.to_string(),
            start_us: start,
            dur_us: end.saturating_sub(start),
        });
        id
    }

    /// Whether this trace was selected by the probabilistic sampler
    /// (it may still be captured as slow even when `false`).
    pub fn sampled(&self) -> bool {
        self.sampled
    }
}

/// Trace collector: sampling decision, slow-capture threshold, and the
/// ring journal of recent captures.
#[derive(Debug)]
pub struct Tracer {
    /// Capture every Nth request; 0 disables probabilistic sampling.
    sample_every: AtomicU64,
    /// Always capture requests slower than this many µs; 0 disables.
    slow_us: AtomicU64,
    /// Request counter driving the every-Nth sampler.
    seq: AtomicU64,
    /// Capture counter (stamped into records).
    captures: AtomicU64,
    /// Next ring slot to write.
    cursor: AtomicU64,
    ring: Vec<AtomicPtr<TraceRecord>>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer {
            sample_every: AtomicU64::new(0),
            slow_us: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            captures: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            ring: (0..TRACE_RING_SLOTS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        for slot in &self.ring {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: every non-null slot pointer was produced by
                // Box::into_raw in publish() and ownership is unique
                // here (we just swapped it out).
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl Tracer {
    /// Tracer with sampling disabled (the default).
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Configure sampling: capture each request with probability
    /// `sample_rate` (clamped to `[0, 1]`, implemented as every-Nth
    /// with `N = round(1/rate)`), and always capture requests slower
    /// than `slow_ms` milliseconds (0 disables slow capture).
    pub fn configure(&self, sample_rate: f64, slow_ms: u64) {
        let every = if sample_rate <= 0.0 {
            0
        } else if sample_rate >= 1.0 {
            1
        } else {
            (1.0 / sample_rate).round().max(1.0) as u64
        };
        self.sample_every.store(every, Ordering::Relaxed);
        self.slow_us
            .store(slow_ms.saturating_mul(1_000), Ordering::Relaxed);
    }

    /// Whether any capture mode is active. When false,
    /// [`Tracer::start`] returns `None` and tracing costs one relaxed
    /// load per request.
    pub fn enabled(&self) -> bool {
        self.sample_every.load(Ordering::Relaxed) != 0 || self.slow_us.load(Ordering::Relaxed) != 0
    }

    /// Begin a trace for one request of the given kind. Returns `None`
    /// when tracing is entirely disabled, so callers can skip all
    /// clock reads on the fast path.
    pub fn start(&self, kind: &'static str) -> Option<TraceBuilder> {
        let every = self.sample_every.load(Ordering::Relaxed);
        let slow = self.slow_us.load(Ordering::Relaxed);
        if every == 0 && slow == 0 {
            return None;
        }
        let sampled = every != 0
            && self
                .seq
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(every);
        if !sampled && slow == 0 {
            // Sampling active but this request lost the draw, and no
            // slow capture to arm: skip span recording entirely.
            return None;
        }
        Some(TraceBuilder {
            t0: Instant::now(),
            kind,
            spans: Vec::new(),
            next_id: 2, // root is 1
            sampled,
        })
    }

    /// Complete a trace: decide capture (sampled, or total ≥ slow
    /// threshold), stamp the root span, and publish to the ring.
    /// Returns the total duration in µs regardless of capture.
    pub fn finish(&self, b: TraceBuilder) -> u64 {
        let total_us = b.clock();
        let slow = self.slow_us.load(Ordering::Relaxed);
        let is_slow = slow != 0 && total_us >= slow;
        if !b.sampled && !is_slow {
            return total_us;
        }
        let reason = if b.sampled {
            SampleReason::Sampled
        } else {
            SampleReason::Slow
        };
        let mut spans = b.spans;
        spans.insert(
            0,
            SpanRec {
                id: 1,
                parent: None,
                name: b.kind.to_string(),
                start_us: 0,
                dur_us: total_us,
            },
        );
        let rec = Box::new(TraceRecord {
            seq: self.captures.fetch_add(1, Ordering::Relaxed),
            kind: b.kind,
            total_us,
            reason,
            spans,
        });
        self.publish(rec);
        total_us
    }

    fn publish(&self, rec: Box<TraceRecord>) {
        let slot = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.ring.len();
        let old = self.ring[slot].swap(Box::into_raw(rec), Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: non-null slot pointers are uniquely owned by the
            // slot; swap transferred that ownership to us.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// The `n` most recent captured traces, newest first. Lock-free:
    /// each slot is swapped out, cloned, and CAS-ed back; if a writer
    /// reused the slot meanwhile the older record is dropped.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = Vec::new();
        for slot in &self.ring {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if p.is_null() {
                continue;
            }
            // SAFETY: swap gave us unique ownership of the record.
            let boxed = unsafe { Box::from_raw(p) };
            out.push((*boxed).clone());
            let raw = Box::into_raw(boxed);
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    raw,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                // A writer claimed the slot while we held the record;
                // the newer trace wins, ours is dropped.
                // SAFETY: raw came from Box::into_raw two lines up and
                // the CAS failure means the slot never took ownership.
                drop(unsafe { Box::from_raw(raw) });
            }
        }
        out.sort_by_key(|r| std::cmp::Reverse(r.seq));
        out.truncate(n);
        out
    }

    /// Total traces captured since startup.
    pub fn captured(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }
}

/// Shared tracer handle.
pub type SharedTracer = Arc<Tracer>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_starts_nothing() {
        let t = Tracer::new();
        assert!(!t.enabled());
        assert!(t.start("recommend").is_none());
    }

    #[test]
    fn sample_every_request_captures_spans_with_root() {
        let t = Tracer::new();
        t.configure(1.0, 0);
        let mut b = t.start("recommend").expect("rate 1.0 samples everything");
        assert!(b.sampled());
        let s = b.clock();
        std::thread::sleep(Duration::from_millis(2));
        let id = b.close("scan[0]", s);
        assert_eq!(id, 2);
        let total = t.finish(b);
        assert!(total >= 2_000, "slept 2ms, total {total}µs");
        let recent = t.recent(10);
        assert_eq!(recent.len(), 1);
        let rec = &recent[0];
        assert_eq!(rec.kind, "recommend");
        assert_eq!(rec.reason, SampleReason::Sampled);
        assert_eq!(rec.spans[0].id, 1);
        assert_eq!(rec.spans[0].parent, None);
        assert_eq!(rec.spans[0].dur_us, rec.total_us);
        assert_eq!(rec.spans[1].name, "scan[0]");
        assert_eq!(rec.spans[1].parent, Some(1));
        assert!(rec.spans[1].dur_us >= 2_000);
        assert!(rec.spans[1].dur_us <= rec.total_us);
    }

    #[test]
    fn sampling_rate_is_every_nth() {
        let t = Tracer::new();
        t.configure(0.25, 0);
        let mut captured = 0;
        for _ in 0..100 {
            if let Some(b) = t.start("recommend") {
                if b.sampled() {
                    t.finish(b);
                    captured += 1;
                }
            }
        }
        assert_eq!(captured, 25, "every-4th of 100");
        assert_eq!(t.captured(), 25);
    }

    #[test]
    fn slow_capture_keeps_only_slow_requests() {
        let t = Tracer::new();
        t.configure(0.0, 1); // no sampling, slow threshold 1 ms
                             // Fast request: dropped.
        let b = t.start("apply").expect("slow capture arms tracing");
        assert!(!b.sampled());
        t.finish(b);
        assert_eq!(t.recent(10).len(), 0);
        // Slow request: captured.
        let b = t.start("apply").unwrap();
        std::thread::sleep(Duration::from_millis(3));
        t.finish(b);
        let recent = t.recent(10);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].reason, SampleReason::Slow);
    }

    #[test]
    fn ring_keeps_most_recent_and_orders_newest_first() {
        let t = Tracer::new();
        t.configure(1.0, 0);
        for _ in 0..(TRACE_RING_SLOTS + 50) {
            let b = t.start("recommend").unwrap();
            t.finish(b);
        }
        let recent = t.recent(5);
        assert_eq!(recent.len(), 5);
        let top = (TRACE_RING_SLOTS + 50 - 1) as u64;
        let seqs: Vec<u64> = recent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![top, top - 1, top - 2, top - 3, top - 4]);
        // Reads are non-destructive (records are CAS-ed back).
        assert_eq!(t.recent(5).len(), 5);
    }

    #[test]
    fn concurrent_writers_and_readers_dont_lose_the_ring() {
        let t = Arc::new(Tracer::new());
        t.configure(1.0, 0);
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let b = t.start("recommend").unwrap();
                        t.finish(b);
                    }
                })
            })
            .collect();
        let reader = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..50 {
                    seen = seen.max(t.recent(TRACE_RING_SLOTS).len());
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(t.captured(), 2_000);
        assert!(!t.recent(TRACE_RING_SLOTS).is_empty());
    }
}
