//! Two-tier hot/cold user-factor store with fold-in-on-demand.
//!
//! The paper's serving model assumes every user factor row is resident,
//! which caps deployments at RAM size. [`UserTier`] splits user state
//! into a **hot resident tier** (a fixed budget of rows in a CLOCK
//! arena) and a **cold tier** (positioned reads over an on-disk file in
//! the persist matrix layout). A read that misses the hot tier *faults*
//! the row in from one of two sources:
//!
//! * the **cold file**, for users whose factors were materialised when
//!   the tier was built (a `16 + row·K·4` positioned read, bit-identical
//!   bytes); or
//! * a **fold recipe** ([`FoldRecipe`]: history + steps + seed + the
//!   catalog size at fold time), re-running the deterministic BPR
//!   fold-in of [`crate::dynamic::fold_in_user`] for users folded in (or
//!   re-folded) after the tier was built.
//!
//! Both sources reproduce the row **bit-identically** to its
//! never-evicted self: the cold file stores the exact little-endian f32
//! bytes, and fold-in is a pure function of `(history, steps, seed,
//! n_items)` over item factors that later catalog growth never mutates
//! (`add_item` only appends zero rows). `differential_tiering.rs` proves
//! this by replaying identical streams at tier budgets {∞, half, tiny}.
//!
//! The tier is shared (behind `Arc`) across every published model epoch;
//! each [`crate::TfModel`] carries a frozen row count so `num_users()`
//! stays epoch-consistent while the underlying store grows. Writes go
//! through `set_row` and are idempotent (same id + same factor), which
//! keeps the live applier's validate-by-clone discipline safe.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use taxrec_dataset::Transaction;
use taxrec_factors::CowMatrix;

use crate::obs::{Counter, Gauge, HistogramHandle, MetricsRegistry};

/// Everything needed to deterministically recompute a folded-in user's
/// factor: the full replacement history plus the fold parameters,
/// including the catalog size at the time of the original fold (so
/// negative sampling replays the exact RNG path on a grown catalog).
#[derive(Debug, Clone)]
pub struct FoldRecipe {
    /// The user's complete transaction history at fold time.
    pub history: Arc<[Transaction]>,
    /// BPR fold-in steps.
    pub steps: usize,
    /// RNG seed for the fold.
    pub seed: u64,
    /// `num_items()` when the fold originally ran; negatives are sampled
    /// from `0..n_items` regardless of later catalog growth.
    pub n_items: usize,
}

impl FoldRecipe {
    fn same_as(&self, other: &FoldRecipe) -> bool {
        Arc::ptr_eq(&self.history, &other.history)
            && self.steps == other.steps
            && self.seed == other.seed
            && self.n_items == other.n_items
    }
}

/// A model's view of a shared [`UserTier`]: the tier itself plus the
/// number of user rows this model epoch covers. The tier keeps growing
/// as later epochs fold users in; `rows` freezes `num_users()` per epoch.
#[derive(Debug, Clone)]
pub(crate) struct TierHandle {
    pub(crate) tier: Arc<UserTier>,
    pub(crate) rows: usize,
}

/// One resident row in the CLOCK arena.
#[derive(Debug, Clone, Copy)]
struct Slot {
    user: usize,
    referenced: bool,
}

/// Fixed-budget resident arena with CLOCK (second-chance) eviction.
/// Storage grows lazily up to `budget` rows, then evicts.
#[derive(Debug)]
struct HotArena {
    k: usize,
    budget: usize,
    data: Vec<f32>,
    slots: Vec<Slot>,
    map: HashMap<usize, usize>,
    hand: usize,
}

impl HotArena {
    fn new(k: usize, budget: usize) -> HotArena {
        HotArena {
            k,
            budget: budget.max(1),
            data: Vec::new(),
            slots: Vec::new(),
            map: HashMap::new(),
            hand: 0,
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn row(&self, slot: usize) -> &[f32] {
        &self.data[slot * self.k..(slot + 1) * self.k]
    }

    /// Copy a resident row into `out` and mark it referenced.
    fn get(&mut self, user: usize, out: &mut [f32]) -> bool {
        let Some(&s) = self.map.get(&user) else {
            return false;
        };
        out.copy_from_slice(&self.data[s * self.k..(s + 1) * self.k]);
        self.slots[s].referenced = true;
        true
    }

    /// Copy a resident row into `out` **without** touching the CLOCK
    /// reference bit — snapshot materialisation must not perturb the
    /// eviction order.
    fn peek(&self, user: usize, out: &mut [f32]) -> bool {
        let Some(&s) = self.map.get(&user) else {
            return false;
        };
        out.copy_from_slice(self.row(s));
        true
    }

    /// Insert (or overwrite) a row, evicting via CLOCK when the arena is
    /// at budget. Returns the evicted user id, if any.
    fn admit(&mut self, user: usize, row: &[f32]) -> Option<usize> {
        if let Some(&s) = self.map.get(&user) {
            self.data[s * self.k..(s + 1) * self.k].copy_from_slice(row);
            self.slots[s].referenced = true;
            return None;
        }
        if self.slots.len() < self.budget {
            let s = self.slots.len();
            self.slots.push(Slot {
                user,
                referenced: true,
            });
            self.data.extend_from_slice(row);
            self.map.insert(user, s);
            return None;
        }
        loop {
            let s = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if self.slots[s].referenced {
                self.slots[s].referenced = false;
                continue;
            }
            let evicted = self.slots[s].user;
            self.map.remove(&evicted);
            self.map.insert(user, s);
            self.slots[s] = Slot {
                user,
                referenced: true,
            };
            self.data[s * self.k..(s + 1) * self.k].copy_from_slice(row);
            return Some(evicted);
        }
    }
}

/// Positioned reads over the cold user-factor file: a 16-byte header
/// (`rows: u64 LE`, `k: u64 LE`) followed by row-major f32 LE — the
/// persist matrix layout, so the bytes round-trip bit-identically.
#[derive(Debug)]
struct ColdStore {
    file: File,
    rows: usize,
    k: usize,
    #[cfg(not(unix))]
    lock: Mutex<()>,
}

impl ColdStore {
    const HEADER: u64 = 16;

    fn read_row(&self, row: usize) -> io::Result<Vec<f32>> {
        assert!(row < self.rows, "cold row {row} out of {}", self.rows);
        let mut buf = vec![0u8; self.k * 4];
        let off = Self::HEADER + (row as u64) * (self.k as u64) * 4;
        self.read_exact_at(&mut buf, off)?;
        Ok(buf
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, off)
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _guard = self.lock.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
}

/// Which source a fault will reconstruct a row from. A recipe, when
/// present, **overrides** the cold file — a re-folded user's cold bytes
/// are stale by definition.
#[derive(Debug)]
enum Source {
    Recipe(FoldRecipe),
    File,
}

#[derive(Debug)]
struct TierInner {
    /// Global row count: max user id ever written, plus one.
    total_rows: usize,
    /// Recipes for users folded in (or re-folded) after the cold file
    /// was written. Keyed by user id; overrides the cold file.
    recipes: HashMap<usize, FoldRecipe>,
    hot: HotArena,
}

#[derive(Debug)]
struct TierStats {
    hits: Counter,
    cold_reads: Counter,
    refolds: Counter,
    evictions: Counter,
    budget_rows: Gauge,
    hot_rows: Gauge,
    total_rows: Gauge,
    cold_rows: Gauge,
    fault_cold: HistogramHandle,
    fault_refold: HistogramHandle,
}

impl TierStats {
    fn register(registry: &MetricsRegistry) -> TierStats {
        TierStats {
            hits: registry.counter(
                "taxrec_tier_hits_total",
                "User-factor reads served from the hot resident tier.",
                &[],
            ),
            cold_reads: registry.counter(
                "taxrec_tier_cold_reads_total",
                "Tier faults served by a positioned read of the cold file.",
                &[],
            ),
            refolds: registry.counter(
                "taxrec_tier_refolds_total",
                "Tier faults served by re-running the deterministic fold-in.",
                &[],
            ),
            evictions: registry.counter(
                "taxrec_tier_evictions_total",
                "Hot-tier rows evicted by the CLOCK policy.",
                &[],
            ),
            budget_rows: registry.gauge(
                "taxrec_tier_budget_rows",
                "Configured hot-tier budget in user rows.",
                &[],
            ),
            hot_rows: registry.gauge(
                "taxrec_tier_hot_rows",
                "User rows currently resident in the hot tier.",
                &[],
            ),
            total_rows: registry.gauge(
                "taxrec_tier_total_rows",
                "Total user rows the tier covers (cold + folded-in).",
                &[],
            ),
            cold_rows: registry.gauge(
                "taxrec_tier_cold_rows",
                "User rows materialised in the cold file.",
                &[],
            ),
            fault_cold: registry.histogram(
                "taxrec_tier_fault_seconds",
                "Latency of hot-tier faults by reconstruction source.",
                &[("source", "cold_read")],
            ),
            fault_refold: registry.histogram(
                "taxrec_tier_fault_seconds",
                "Latency of hot-tier faults by reconstruction source.",
                &[("source", "refold")],
            ),
        }
    }
}

/// The two-tier user-factor store. See the [module docs](self).
///
/// Shared behind `Arc` across model epochs; all methods take `&self`.
#[derive(Debug)]
pub struct UserTier {
    k: usize,
    /// Users `0..cold_rows` have a row in the cold file.
    cold_rows: usize,
    cold: ColdStore,
    inner: Mutex<TierInner>,
    stats: TierStats,
}

impl UserTier {
    /// Build a tier from a fully resident user matrix: write every row
    /// to the cold file at `path`, then start with an **empty** hot
    /// arena of `budget_rows` (cold-start; the workload's skew fills it).
    ///
    /// Metric families (`taxrec_tier_*`) are registered on `registry`.
    pub fn build(
        path: &Path,
        users: &CowMatrix,
        budget_rows: usize,
        registry: &MetricsRegistry,
    ) -> io::Result<Arc<UserTier>> {
        let (rows, k) = (users.rows(), users.k());
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&(rows as u64).to_le_bytes())?;
        w.write_all(&(k as u64).to_le_bytes())?;
        let mut buf = Vec::with_capacity(k * 4);
        for r in 0..rows {
            buf.clear();
            for &v in users.row(r) {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        w.flush()?;
        let file = File::open(path)?;
        let stats = TierStats::register(registry);
        let budget = budget_rows.max(1);
        stats.budget_rows.set(budget as u64);
        stats.cold_rows.set(rows as u64);
        stats.total_rows.set(rows as u64);
        stats.hot_rows.set(0);
        Ok(Arc::new(UserTier {
            k,
            cold_rows: rows,
            cold: ColdStore {
                file,
                rows,
                k,
                #[cfg(not(unix))]
                lock: Mutex::new(()),
            },
            inner: Mutex::new(TierInner {
                total_rows: rows,
                recipes: HashMap::new(),
                hot: HotArena::new(k, budget),
            }),
            stats,
        }))
    }

    fn lock(&self) -> MutexGuard<'_, TierInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Factor dimensionality `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Configured hot budget in rows.
    pub fn budget_rows(&self) -> usize {
        self.lock().hot.budget
    }

    /// Total rows the tier covers (cold file + users folded in since).
    pub fn total_rows(&self) -> usize {
        self.lock().total_rows
    }

    /// Rows materialised in the cold file at build time.
    pub fn cold_rows(&self) -> usize {
        self.cold_rows
    }

    /// Copy `user`'s factor into `out`, faulting it into the hot tier on
    /// a miss. `refold` reconstructs a recipe-backed row (the caller
    /// supplies it so the serving path can reuse its materialised
    /// [`crate::Scorer`] instead of rebuilding one per fault).
    ///
    /// Faults are computed outside the tier lock; a source that changed
    /// concurrently (a refold racing a fault) is detected and recomputed,
    /// so a stale row is never admitted over a fresher one.
    ///
    /// # Panics
    /// If `user` has no source (never written) or `out.len() != K`.
    pub(crate) fn copy_row<F>(&self, user: usize, out: &mut [f32], mut refold: F)
    where
        F: FnMut(&FoldRecipe) -> Vec<f32>,
    {
        assert_eq!(out.len(), self.k, "out width {} != K {}", out.len(), self.k);
        let mut first = true;
        loop {
            let source = {
                let mut inner = self.lock();
                assert!(
                    user < inner.total_rows,
                    "user {user} out of {} tiered rows",
                    inner.total_rows
                );
                if inner.hot.get(user, out) {
                    if first {
                        self.stats.hits.inc();
                    }
                    return;
                }
                match inner.recipes.get(&user) {
                    Some(r) => Source::Recipe(r.clone()),
                    None => {
                        assert!(user < self.cold_rows, "user {user} has no fault source");
                        Source::File
                    }
                }
            };
            first = false;
            let row = match &source {
                Source::Recipe(r) => {
                    let t = Instant::now();
                    let row = refold(r);
                    self.stats.fault_refold.record(t.elapsed());
                    self.stats.refolds.inc();
                    row
                }
                Source::File => {
                    let t = Instant::now();
                    let row = self
                        .cold
                        .read_row(user)
                        .unwrap_or_else(|e| panic!("cold tier read failed for user {user}: {e}"));
                    self.stats.fault_cold.record(t.elapsed());
                    self.stats.cold_reads.inc();
                    row
                }
            };
            assert_eq!(row.len(), self.k, "faulted row width {} != K", row.len());
            let mut inner = self.lock();
            if inner.hot.get(user, out) {
                // A concurrent fault (or a refold write) admitted the row
                // while we computed; the resident value is at least as
                // fresh as ours — use it.
                return;
            }
            let unchanged = match (&source, inner.recipes.get(&user)) {
                (Source::Recipe(a), Some(b)) => a.same_as(b),
                (Source::File, None) => true,
                _ => false,
            };
            if !unchanged {
                continue;
            }
            if inner.hot.admit(user, &row).is_some() {
                self.stats.evictions.inc();
            }
            self.stats.hot_rows.set(inner.hot.len() as u64);
            out.copy_from_slice(&row);
            return;
        }
    }

    /// Copy `user`'s factor into `out` **without** admitting it or
    /// touching CLOCK reference bits or fault counters — snapshot
    /// materialisation must be invisible to the eviction policy.
    pub(crate) fn peek_row<F>(&self, user: usize, out: &mut [f32], refold: F)
    where
        F: FnOnce(&FoldRecipe) -> Vec<f32>,
    {
        let source = {
            let inner = self.lock();
            assert!(
                user < inner.total_rows,
                "user {user} out of {} tiered rows",
                inner.total_rows
            );
            if inner.hot.peek(user, out) {
                return;
            }
            match inner.recipes.get(&user) {
                Some(r) => Source::Recipe(r.clone()),
                None => {
                    assert!(user < self.cold_rows, "user {user} has no fault source");
                    Source::File
                }
            }
        };
        match source {
            Source::Recipe(r) => out.copy_from_slice(&refold(&r)),
            Source::File => out.copy_from_slice(
                &self
                    .cold
                    .read_row(user)
                    .unwrap_or_else(|e| panic!("cold tier read failed for user {user}: {e}")),
            ),
        }
    }

    /// Write (or overwrite) a row together with the recipe that can
    /// reconstruct it after eviction. Write-allocates into the hot tier.
    /// Idempotent: replaying the same `(user, row, recipe)` — e.g. the
    /// live applier's validate-by-clone — is harmless.
    pub(crate) fn set_row(&self, user: usize, row: &[f32], recipe: FoldRecipe) {
        assert_eq!(row.len(), self.k, "row width {} != K {}", row.len(), self.k);
        let mut inner = self.lock();
        inner.recipes.insert(user, recipe);
        if inner.hot.admit(user, row).is_some() {
            self.stats.evictions.inc();
        }
        if user + 1 > inner.total_rows {
            inner.total_rows = user + 1;
        }
        self.stats.total_rows.set(inner.total_rows as u64);
        self.stats.hot_rows.set(inner.hot.len() as u64);
    }

    /// Point-in-time counters and tier sizes for `/live/stats`.
    pub fn stats_snapshot(&self) -> TierStatsSnapshot {
        let (hot_rows, total_rows, budget_rows) = {
            let inner = self.lock();
            (inner.hot.len(), inner.total_rows, inner.hot.budget)
        };
        TierStatsSnapshot {
            budget_rows,
            hot_rows,
            total_rows,
            cold_rows: self.cold_rows,
            hits: self.stats.hits.get(),
            cold_reads: self.stats.cold_reads.get(),
            refolds: self.stats.refolds.get(),
            evictions: self.stats.evictions.get(),
            fault_cold_p50_us: self.stats.fault_cold.quantile_us(0.50),
            fault_cold_p99_us: self.stats.fault_cold.quantile_us(0.99),
            fault_refold_p50_us: self.stats.fault_refold.quantile_us(0.50),
            fault_refold_p99_us: self.stats.fault_refold.quantile_us(0.99),
        }
    }
}

/// Point-in-time view of a [`UserTier`]'s sizes and counters.
#[derive(Debug, Clone, Copy)]
pub struct TierStatsSnapshot {
    /// Configured hot budget in rows.
    pub budget_rows: usize,
    /// Rows currently resident in the hot tier.
    pub hot_rows: usize,
    /// Total rows covered (cold + folded-in since build).
    pub total_rows: usize,
    /// Rows materialised in the cold file.
    pub cold_rows: usize,
    /// Reads served from the hot tier.
    pub hits: u64,
    /// Faults served by a cold-file positioned read.
    pub cold_reads: u64,
    /// Faults served by re-running the deterministic fold-in.
    pub refolds: u64,
    /// CLOCK evictions.
    pub evictions: u64,
    /// p50 cold-read fault latency, µs.
    pub fault_cold_p50_us: u64,
    /// p99 cold-read fault latency, µs.
    pub fault_cold_p99_us: u64,
    /// p50 refold fault latency, µs.
    pub fault_refold_p50_us: u64,
    /// p99 refold fault latency, µs.
    pub fault_refold_p99_us: u64,
}

impl TierStatsSnapshot {
    /// Total faults (cold reads + refolds).
    pub fn faults(&self) -> u64 {
        self.cold_reads + self.refolds
    }

    /// Hit rate over all tier reads; 1.0 when nothing has been read.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.faults();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxrec_factors::FactorMatrix;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("taxrec-tier-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("users.cold")
    }

    fn matrix(rows: usize, k: usize) -> CowMatrix {
        let mut m = FactorMatrix::zeros(rows, k);
        for r in 0..rows {
            for (z, v) in m.row_mut(r).iter_mut().enumerate() {
                *v = (r * 31 + z) as f32 * 0.25 - 3.0;
            }
        }
        CowMatrix::from_dense(m)
    }

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new()
    }

    fn no_refold(_: &FoldRecipe) -> Vec<f32> {
        panic!("unexpected refold")
    }

    #[test]
    fn cold_roundtrip_is_bit_identical() {
        let users = matrix(600, 7);
        let reg = registry();
        let tier = UserTier::build(&tmpfile("roundtrip"), &users, 16, &reg).unwrap();
        let mut out = vec![0.0f32; 7];
        for u in [0usize, 1, 255, 256, 599] {
            tier.copy_row(u, &mut out, no_refold);
            assert_eq!(out.as_slice(), users.row(u), "user {u}");
        }
    }

    #[test]
    fn clock_evicts_and_refaults() {
        let users = matrix(40, 4);
        let reg = registry();
        let tier = UserTier::build(&tmpfile("clock"), &users, 8, &reg).unwrap();
        let mut out = vec![0.0f32; 4];
        for u in 0..40 {
            tier.copy_row(u, &mut out, no_refold);
            assert_eq!(out.as_slice(), users.row(u));
        }
        let s = tier.stats_snapshot();
        assert_eq!(s.hot_rows, 8);
        assert_eq!(s.cold_reads, 40);
        assert_eq!(s.evictions, 32);
        // Re-read an evicted row: faults again, still bit-identical.
        tier.copy_row(0, &mut out, no_refold);
        assert_eq!(out.as_slice(), users.row(0));
        assert_eq!(tier.stats_snapshot().cold_reads, 41);
        // A resident row hits without faulting.
        tier.copy_row(0, &mut out, no_refold);
        assert_eq!(tier.stats_snapshot().hits, 1);
    }

    #[test]
    fn recipe_overrides_cold_file_and_survives_eviction() {
        let users = matrix(20, 4);
        let reg = registry();
        let tier = UserTier::build(&tmpfile("recipe"), &users, 2, &reg).unwrap();
        let recipe = FoldRecipe {
            history: Arc::from(Vec::new()),
            steps: 3,
            seed: 9,
            n_items: 5,
        };
        let fresh = vec![1.5f32, -2.0, 0.25, 8.0];
        tier.set_row(3, &fresh, recipe);
        let mut out = vec![0.0f32; 4];
        // Resident right after the write.
        tier.copy_row(3, &mut out, no_refold);
        assert_eq!(out, fresh);
        // Evict it by touching other users, then fault: the recipe (not
        // the stale cold bytes) must reconstruct it.
        for u in 10..16 {
            tier.copy_row(u, &mut out, no_refold);
        }
        tier.copy_row(3, &mut out, |r| {
            assert_eq!(r.steps, 3);
            assert_eq!(r.seed, 9);
            assert_eq!(r.n_items, 5);
            fresh.clone()
        });
        assert_eq!(out, fresh);
        assert_eq!(tier.stats_snapshot().refolds, 1);
    }

    #[test]
    fn set_row_appends_and_grows_total() {
        let users = matrix(10, 3);
        let reg = registry();
        let tier = UserTier::build(&tmpfile("grow"), &users, 4, &reg).unwrap();
        assert_eq!(tier.total_rows(), 10);
        let recipe = FoldRecipe {
            history: Arc::from(Vec::new()),
            steps: 1,
            seed: 1,
            n_items: 2,
        };
        tier.set_row(10, &[1.0, 2.0, 3.0], recipe.clone());
        // Idempotent replay of the same write.
        tier.set_row(10, &[1.0, 2.0, 3.0], recipe);
        assert_eq!(tier.total_rows(), 11);
        let mut out = vec![0.0f32; 3];
        tier.copy_row(10, &mut out, no_refold);
        assert_eq!(out, [1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn reading_past_total_panics() {
        let users = matrix(4, 2);
        let reg = registry();
        let tier = UserTier::build(&tmpfile("oob"), &users, 2, &reg).unwrap();
        let mut out = vec![0.0f32; 2];
        tier.copy_row(4, &mut out, no_refold);
    }
}
