//! Sampling of SGD training points.
//!
//! A training point is the 4-tuple `(u, t, i, j)` (Sec. 4.1): user `u`,
//! transaction index `t`, a positive item `i ∈ B_t` and a negative item
//! `j ∉ B_t`. The paper samples "a single (randomly chosen) term in the
//! summation", i.e. uniformly over *purchase events*; the
//! [`PurchaseIndex`] flattens the log so that draw is O(1).

use rand::Rng;
use taxrec_dataset::PurchaseLog;
use taxrec_taxonomy::ItemId;

/// One purchase event: user `u`, transaction `t`, position `pos` within
/// the basket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PurchaseEvent {
    /// User index.
    pub user: u32,
    /// Transaction index within the user's history.
    pub tx: u32,
    /// Item position within the basket.
    pub pos: u32,
}

/// Flat index of every purchase event in a log, for O(1) uniform draws.
#[derive(Debug, Clone)]
pub struct PurchaseIndex {
    events: Vec<PurchaseEvent>,
}

impl PurchaseIndex {
    /// Index all purchase events of `log`.
    pub fn build(log: &PurchaseLog) -> PurchaseIndex {
        let mut events = Vec::with_capacity(log.num_purchases());
        for (u, hist) in log.iter_users() {
            for (t, basket) in hist.iter().enumerate() {
                for pos in 0..basket.len() {
                    events.push(PurchaseEvent {
                        user: u as u32,
                        tx: t as u32,
                        pos: pos as u32,
                    });
                }
            }
        }
        PurchaseIndex { events }
    }

    /// Number of indexed purchase events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the log had no purchases.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draw one event uniformly.
    ///
    /// # Panics
    /// If the index is empty.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PurchaseEvent {
        self.events[rng.gen_range(0..self.events.len())]
    }

    /// All events (deterministic iteration for tests).
    pub fn events(&self) -> &[PurchaseEvent] {
        &self.events
    }
}

/// Draw a negative item `j ∉ basket`, uniform over the catalog.
///
/// `basket` must be sorted (transaction baskets are, by construction).
/// Returns `None` when the basket covers the whole catalog (no negative
/// exists) — callers skip the step.
pub fn sample_negative<R: Rng + ?Sized>(
    basket: &[ItemId],
    num_items: usize,
    rng: &mut R,
) -> Option<ItemId> {
    debug_assert!(basket.windows(2).all(|w| w[0] < w[1]), "basket not sorted");
    if basket.len() >= num_items {
        return None;
    }
    // Rejection sampling: baskets are tiny relative to the catalog, so a
    // handful of attempts almost always suffices …
    for _ in 0..32 {
        let j = ItemId(rng.gen_range(0..num_items as u32));
        if basket.binary_search(&j).is_err() {
            return Some(j);
        }
    }
    // … except in adversarial unit tests; fall back to a scan from a
    // random offset, which is exact.
    let start = rng.gen_range(0..num_items as u32);
    for off in 0..num_items as u32 {
        let j = ItemId((start + off) % num_items as u32);
        if basket.binary_search(&j).is_err() {
            return Some(j);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taxrec_dataset::PurchaseLogBuilder;

    fn item(i: u32) -> ItemId {
        ItemId(i)
    }

    fn demo_log() -> PurchaseLog {
        let mut b = PurchaseLogBuilder::new();
        b.push_user(vec![vec![item(0), item(1)], vec![item(2)]]);
        b.push_user(vec![vec![item(3)]]);
        b.push_user(vec![]);
        b.build()
    }

    #[test]
    fn index_counts_every_purchase() {
        let idx = PurchaseIndex::build(&demo_log());
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
    }

    #[test]
    fn events_address_real_items() {
        let log = demo_log();
        let idx = PurchaseIndex::build(&log);
        for e in idx.events() {
            let basket = &log.user(e.user as usize)[e.tx as usize];
            assert!((e.pos as usize) < basket.len());
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let log = demo_log();
        let idx = PurchaseIndex::build(&log);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = vec![0usize; idx.len()];
        let draws = 40_000;
        for _ in 0..draws {
            let e = idx.sample(&mut rng);
            let k = idx
                .events()
                .iter()
                .position(|x| x == &e)
                .expect("sampled event must be indexed");
            counts[k] += 1;
        }
        let expect = draws as f64 / idx.len() as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "count {c} vs {expect}"
            );
        }
    }

    #[test]
    fn negative_never_in_basket() {
        let basket = vec![item(1), item(3), item(5)];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let j = sample_negative(&basket, 8, &mut rng).unwrap();
            assert!(basket.binary_search(&j).is_err());
        }
    }

    #[test]
    fn negative_exact_when_catalog_tight() {
        // Only one item is not in the basket.
        let basket: Vec<ItemId> = (0..9).map(item).collect();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(sample_negative(&basket, 10, &mut rng), Some(item(9)));
        }
    }

    #[test]
    fn negative_none_when_basket_is_catalog() {
        let basket: Vec<ItemId> = (0..4).map(item).collect();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_negative(&basket, 4, &mut rng), None);
    }

    #[test]
    fn empty_log_empty_index() {
        let log = PurchaseLogBuilder::new().build();
        assert!(PurchaseIndex::build(&log).is_empty());
    }
}
