//! Training: BPR stochastic gradient descent over TF models (Sec. 4 & 6).
//!
//! [`TfTrainer::fit`] runs single-threaded (deterministic per seed);
//! [`TfTrainer::fit_parallel`] reproduces the paper's multi-core design —
//! shared factor matrices behind per-row locks, `threads` SGD workers,
//! and optional thread-local drift caches for the hot internal taxonomy
//! rows (enabled via [`ModelConfig::cache_threshold`]).

pub mod sampler;
mod worker;

use crate::config::ModelConfig;
use crate::model::{cutoff_for, TfModel};
use sampler::PurchaseIndex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use taxrec_dataset::PurchaseLog;
use taxrec_factors::SharedFactors;
use taxrec_taxonomy::{PathTable, Taxonomy};
use worker::{SharedModel, Worker};

/// Timing and counter statistics of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Wall-clock duration of each epoch (the Fig. 8a measurement).
    pub epoch_times: Vec<Duration>,
    /// Worker threads used.
    pub threads: usize,
    /// Total SGD steps executed.
    pub steps: u64,
    /// Steps that used sibling-based training.
    pub sibling_steps: u64,
    /// Steps skipped (no negative available).
    pub skipped_steps: u64,
    /// Drift-cache reconciliations.
    pub cache_flushes: u64,
}

impl TrainStats {
    /// Mean epoch duration.
    pub fn mean_epoch_time(&self) -> Duration {
        if self.epoch_times.is_empty() {
            return Duration::ZERO;
        }
        self.epoch_times.iter().sum::<Duration>() / self.epoch_times.len() as u32
    }
}

/// Mini-batch size of [`TfTrainer::fit_deterministic`]: steps inside
/// one batch read factors at most this stale, and the barrier applies
/// their updates in global step order. Small enough that quality tracks
/// plain SGD, large enough that the per-batch join cost amortises.
pub const DETERMINISTIC_BATCH: u64 = 256;

/// Per-step seed for deterministic training: a splitmix64 of the run
/// seed, the epoch, and the *global* step index, so a step's entire
/// randomness is independent of which worker executes it.
fn step_seed(seed: u64, epoch: usize, step: u64) -> u64 {
    let mut z = seed
        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ step.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trains TF(U, B) models over a fixed taxonomy.
#[derive(Debug, Clone)]
pub struct TfTrainer {
    config: ModelConfig,
    taxonomy: Arc<Taxonomy>,
}

impl TfTrainer {
    /// Trainer cloning `taxonomy` into shared ownership.
    pub fn new(config: ModelConfig, taxonomy: &Taxonomy) -> TfTrainer {
        Self::with_arc(config, Arc::new(taxonomy.clone()))
    }

    /// Trainer reusing an existing shared taxonomy.
    pub fn with_arc(config: ModelConfig, taxonomy: Arc<Taxonomy>) -> TfTrainer {
        if let Err(e) = config.validate() {
            panic!("invalid ModelConfig: {e}");
        }
        TfTrainer { config, taxonomy }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Single-threaded training; deterministic for a given `(seed, data)`.
    pub fn fit(&self, train: &PurchaseLog, seed: u64) -> TfModel {
        self.fit_parallel(train, seed, 1).0
    }

    /// The taxonomy this trainer is bound to.
    pub fn taxonomy_ref(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Multi-threaded training (Sec. 6.1). Returns the model and the
    /// per-epoch wall-times used by the Fig. 8 benches.
    ///
    /// Steps per epoch = `purchases × negatives_per_positive`, matching
    /// the paper's definition of an epoch as "a complete pass over the
    /// data set".
    pub fn fit_parallel(
        &self,
        train: &PurchaseLog,
        seed: u64,
        threads: usize,
    ) -> (TfModel, TrainStats) {
        let model = TfModel::init(
            self.config.clone(),
            Arc::clone(&self.taxonomy),
            train.num_users(),
            seed,
        );
        self.fit_parallel_from(model, train, seed, threads)
    }

    /// Multi-threaded training whose result is **bit-identical for any
    /// thread count** (and to its own single-threaded run): the epoch
    /// is cut into fixed synchronous mini-batches; within a batch every
    /// step draws its entire randomness from a seed derived from the
    /// *global* step index and computes its gradients against the
    /// frozen batch-start factors, recording updates in a per-worker
    /// [`worker::DeltaLog`] instead of the shared matrices; at the
    /// batch barrier the logs are applied back-to-back in worker order
    /// — with contiguous step ranges per worker that is exactly the
    /// global step order, so every `f32` addition happens in one
    /// canonical sequence regardless of the partition.
    ///
    /// Compared to [`fit_parallel`](Self::fit_parallel) (Hogwild,
    /// non-deterministic interleavings) this trades some freshness —
    /// steps inside one mini-batch see factors up to
    /// [`DETERMINISTIC_BATCH`] steps stale, the bounded-staleness
    /// regime the paper's cached workers already rely on — for exact
    /// replayability. Drift caches are disabled (their flush points
    /// would depend on the partition). Locked in by
    /// `tests/train_determinism.rs`.
    pub fn fit_deterministic(
        &self,
        train: &PurchaseLog,
        seed: u64,
        threads: usize,
    ) -> (TfModel, TrainStats) {
        let threads = threads.max(1);
        let model = TfModel::init(
            self.config.clone(),
            Arc::clone(&self.taxonomy),
            train.num_users(),
            seed,
        );
        let index = PurchaseIndex::build(train);
        let mut stats = TrainStats {
            threads,
            ..TrainStats::default()
        };
        if index.is_empty() || self.config.epochs == 0 {
            return (model, stats);
        }

        let TfModel {
            taxonomy,
            config,
            user_factors,
            node_factors,
            next_factors,
            paths,
            cutoff_level,
            user_tier: _,
        } = model;
        let users = SharedFactors::new(user_factors.to_dense());
        let nodes = SharedFactors::new(node_factors.to_dense());
        let nexts = SharedFactors::new(next_factors.to_dense());
        let steps_per_epoch = (index.len() as u64) * self.config.negatives_per_positive as u64;

        for epoch in 0..self.config.epochs {
            let t0 = Instant::now();
            let ctx = SharedModel {
                cfg: &config,
                tax: &taxonomy,
                paths: &paths,
                users: &users,
                nodes: &nodes,
                nexts: &nexts,
            };
            let mut workers: Vec<Worker> = (0..threads)
                .map(|_| Worker::new_deterministic(ctx))
                .collect();
            let mut done = 0u64;
            while done < steps_per_epoch {
                let batch = DETERMINISTIC_BATCH.min(steps_per_epoch - done);
                let per_worker = batch.div_ceil(threads as u64);
                std::thread::scope(|scope| {
                    let index = &index;
                    for (w, worker) in workers.iter_mut().enumerate() {
                        let lo = done + per_worker * w as u64;
                        let hi = (lo + per_worker).min(done + batch);
                        if lo >= hi {
                            continue;
                        }
                        scope.spawn(move || {
                            for s in lo..hi {
                                worker.run_step_seeded(train, index, step_seed(seed, epoch, s));
                            }
                        });
                    }
                });
                // Barrier: apply every worker's deltas in worker order
                // (= global step order), single-threaded.
                for worker in &mut workers {
                    worker.drain_pending();
                }
                done += batch;
            }
            stats.epoch_times.push(t0.elapsed());
            for ws in workers.iter().map(|w| w.stats) {
                stats.steps += ws.steps;
                stats.sibling_steps += ws.sibling_steps;
                stats.skipped_steps += ws.skipped;
            }
        }

        let model = TfModel {
            taxonomy,
            config,
            user_factors: taxrec_factors::CowMatrix::from_dense(users.into_matrix()),
            node_factors: taxrec_factors::CowMatrix::from_dense(nodes.into_matrix()),
            next_factors: taxrec_factors::CowMatrix::from_dense(nexts.into_matrix()),
            paths,
            cutoff_level,
            user_tier: None,
        };
        (model, stats)
    }

    /// Run the SGD epochs starting from an existing model's factors
    /// (warm start; see `TfTrainer::resume` for the validated wrapper).
    pub(crate) fn fit_parallel_from(
        &self,
        model: TfModel,
        train: &PurchaseLog,
        seed: u64,
        threads: usize,
    ) -> (TfModel, TrainStats) {
        let threads = threads.max(1);
        let index = PurchaseIndex::build(train);
        let mut stats = TrainStats {
            threads,
            ..TrainStats::default()
        };
        if index.is_empty() || self.config.epochs == 0 {
            return (model, stats);
        }

        // Unpack the model into lock-guarded shared state.
        let TfModel {
            taxonomy,
            config,
            user_factors,
            node_factors,
            next_factors,
            paths,
            cutoff_level,
            user_tier: _,
        } = model;
        let users = SharedFactors::new(user_factors.to_dense());
        let nodes = SharedFactors::new(node_factors.to_dense());
        let nexts = SharedFactors::new(next_factors.to_dense());

        let steps_per_epoch = (index.len() as u64) * self.config.negatives_per_positive as u64;
        let per_thread = steps_per_epoch.div_ceil(threads as u64);

        for epoch in 0..self.config.epochs {
            let t0 = Instant::now();
            let worker_stats = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for w in 0..threads {
                    let ctx = SharedModel {
                        cfg: &config,
                        tax: &taxonomy,
                        paths: &paths,
                        users: &users,
                        nodes: &nodes,
                        nexts: &nexts,
                    };
                    let index = &index;
                    let rng_seed = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((epoch as u64) << 20)
                        .wrapping_add(w as u64 + 1);
                    handles.push(scope.spawn(move || {
                        use rand::SeedableRng;
                        let mut worker =
                            Worker::new(ctx, rand::rngs::StdRng::seed_from_u64(rng_seed));
                        worker.run_steps(train, index, per_thread);
                        worker.stats
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("SGD worker panicked"))
                    .collect::<Vec<_>>()
            });
            stats.epoch_times.push(t0.elapsed());
            for ws in worker_stats {
                stats.steps += ws.steps;
                stats.sibling_steps += ws.sibling_steps;
                stats.skipped_steps += ws.skipped;
                stats.cache_flushes += ws.cache_flushes;
            }
        }

        let model = TfModel {
            taxonomy,
            config,
            user_factors: taxrec_factors::CowMatrix::from_dense(users.into_matrix()),
            node_factors: taxrec_factors::CowMatrix::from_dense(nodes.into_matrix()),
            next_factors: taxrec_factors::CowMatrix::from_dense(nexts.into_matrix()),
            paths,
            cutoff_level,
            user_tier: None,
        };
        (model, stats)
    }
}

/// Build an *untrained* model (random factors) — the paper's "cold" /
/// random baseline and a convenient fixture for tests and benches.
pub fn untrained_model(
    config: ModelConfig,
    taxonomy: &Taxonomy,
    num_users: usize,
    seed: u64,
) -> TfModel {
    TfModel::init(config, Arc::new(taxonomy.clone()), num_users, seed)
}

/// Re-exported internals for white-box tests of the path machinery.
#[doc(hidden)]
pub fn debug_paths(model: &TfModel) -> (&PathTable, usize) {
    (model.paths(), model.cutoff_level())
}

/// Internal helper shared with `model.rs` (re-exported for tests).
#[doc(hidden)]
pub fn debug_cutoff(tax: &Taxonomy, u: usize) -> usize {
    cutoff_for(tax, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};
    use taxrec_taxonomy::ItemId;

    fn tiny_data() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny(), 77)
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let d = tiny_data();
        let cfg = ModelConfig::tf(4, 0).with_factors(4).with_epochs(2);
        let t = TfTrainer::new(cfg, &d.taxonomy);
        let a = t.fit(&d.train, 5);
        let b = t.fit(&d.train, 5);
        assert_eq!(a.user_factors, b.user_factors);
        assert_eq!(a.node_factors, b.node_factors);
        assert_eq!(a.next_factors, b.next_factors);
    }

    #[test]
    fn fit_changes_factors() {
        let d = tiny_data();
        let cfg = ModelConfig::tf(4, 1).with_factors(4).with_epochs(2);
        let trained = TfTrainer::new(cfg.clone(), &d.taxonomy).fit(&d.train, 5);
        let init = untrained_model(cfg, &d.taxonomy, d.train.num_users(), 5);
        assert_ne!(trained.node_factors, init.node_factors);
        assert_ne!(trained.user_factors, init.user_factors);
        assert_ne!(trained.next_factors, init.next_factors);
    }

    #[test]
    fn factors_stay_finite() {
        let d = tiny_data();
        let cfg = ModelConfig::tf(4, 2).with_factors(8).with_epochs(5);
        let m = TfTrainer::new(cfg, &d.taxonomy).fit(&d.train, 1);
        for mat in [&m.user_factors, &m.node_factors, &m.next_factors] {
            assert!(mat.values().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn stats_report_steps_and_epochs() {
        let d = tiny_data();
        let cfg = ModelConfig::tf(4, 0).with_factors(4).with_epochs(3);
        let (_, stats) = TfTrainer::new(cfg, &d.taxonomy).fit_parallel(&d.train, 2, 2);
        assert_eq!(stats.epoch_times.len(), 3);
        assert_eq!(stats.threads, 2);
        let purchases = d.train.num_purchases() as u64;
        // div_ceil rounding may add up to (threads - 1) steps per epoch.
        assert!(stats.steps >= purchases * 3);
        assert!(stats.steps <= (purchases + 2) * 3 + 6);
        assert!(stats.mean_epoch_time() > Duration::ZERO);
    }

    #[test]
    fn sibling_steps_counted_only_when_mixed() {
        let d = tiny_data();
        let with = ModelConfig::tf(4, 0).with_epochs(1).with_sibling_mix(1.0);
        let without = ModelConfig::tf(4, 0).with_epochs(1).with_sibling_mix(0.0);
        let (_, s1) = TfTrainer::new(with, &d.taxonomy).fit_parallel(&d.train, 3, 1);
        let (_, s0) = TfTrainer::new(without, &d.taxonomy).fit_parallel(&d.train, 3, 1);
        assert_eq!(s1.sibling_steps, s1.steps);
        assert_eq!(s0.sibling_steps, 0);
    }

    #[test]
    fn parallel_training_matches_serial_quality() {
        // Not bit-identical (different interleavings), but the parallel
        // model must fit the training data about as well: compare mean
        // score margin of positives over random negatives.
        let d = tiny_data();
        let cfg = ModelConfig::tf(4, 0).with_factors(8).with_epochs(4);
        let trainer = TfTrainer::new(cfg, &d.taxonomy);
        let serial = trainer.fit(&d.train, 9);
        let (parallel, _) = trainer.fit_parallel(&d.train, 9, 4);
        let margin = |m: &TfModel| {
            let scorer = crate::scoring::Scorer::new(m);
            let mut rng = StdRng::seed_from_u64(4);
            let mut total = 0.0f64;
            let mut n = 0u32;
            for (u, hist) in d.train.iter_users() {
                for (t, basket) in hist.iter().enumerate() {
                    let q = scorer.query(u, &hist[..t]);
                    for &i in basket {
                        use rand::Rng;
                        let j = ItemId(rng.gen_range(0..m.num_items() as u32));
                        total += (scorer.score_item(&q, i) - scorer.score_item(&q, j)) as f64;
                        n += 1;
                    }
                }
            }
            total / n as f64
        };
        let ms = margin(&serial);
        let mp = margin(&parallel);
        assert!(ms > 0.0, "serial model failed to learn (margin {ms})");
        assert!(mp > 0.0, "parallel model failed to learn (margin {mp})");
        assert!(
            (ms - mp).abs() < 0.5 * ms.max(mp),
            "margins diverge: {ms} vs {mp}"
        );
    }

    #[test]
    fn cache_enabled_training_still_learns() {
        let d = tiny_data();
        let cfg = ModelConfig::tf(4, 0)
            .with_factors(4)
            .with_epochs(3)
            .with_cache_threshold(Some(0.1));
        let (m, stats) = TfTrainer::new(cfg, &d.taxonomy).fit_parallel(&d.train, 6, 3);
        assert!(stats.cache_flushes > 0, "cache never reconciled");
        assert!(m.node_factors.values().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_log_returns_init_model() {
        let d = tiny_data();
        let empty = taxrec_dataset::PurchaseLogBuilder::new().build();
        let cfg = ModelConfig::tf(4, 0).with_epochs(2);
        let (m, stats) = TfTrainer::new(cfg, &d.taxonomy).fit_parallel(&empty, 1, 2);
        assert_eq!(stats.steps, 0);
        assert!(stats.epoch_times.is_empty());
        assert_eq!(m.num_users(), 0);
    }

    #[test]
    fn zero_epochs_no_steps() {
        let d = tiny_data();
        let cfg = ModelConfig::tf(4, 0).with_epochs(0);
        let (_, stats) = TfTrainer::new(cfg, &d.taxonomy).fit_parallel(&d.train, 1, 1);
        assert_eq!(stats.steps, 0);
    }
}
