//! One SGD worker thread: gradient computation and factor updates.
//!
//! Implements the update rules of Sec. 4 (Eq. 6–7). For a sampled tuple
//! `(u, t, i, j)` with `c = 1 − σ(s_t(i) − s_t(j))` and query vector
//! `q = v_u + Σ_n (α_n/|B_{t−n}|) Σ_ℓ v→_ℓ`:
//!
//! ```text
//! v_u            += ε (c (v_i − v_j) − λ v_u)
//! w_{p^m(i)}     += ε (c q − λ v_i)          for every path level m < U
//! w_{p^m(j)}     += ε (−c q − λ v_j)
//! w→_{p^m(ℓ)}    += ε (c β_ℓ (v_i − v_j) − λ v→_ℓ)   β_ℓ = Σ_{n: ℓ∈B_{t−n}} α_n/|B_{t−n}|
//! ```
//!
//! Note on Eq. 6 as printed: the paper's `∂L/∂v_i` line shows a minus
//! sign before the Markov sum and folds `λ v_i` inside the `c(...)`
//! bracket. Both are typos — differentiating `s_t(i) = ⟨q, v_i⟩` gives
//! exactly `c·q − λ·v_i`, which is what we implement (and what makes the
//! model converge).
//!
//! Sibling-based training (Sec. 4.2) reuses the same BPR update at every
//! taxonomy level: for each node `m` on the purchased item's path, a
//! random sibling `s` is the negative, effective factors are suffix sums
//! of the path offsets (`v_s = v_{parent} + w_s` shares all ancestors),
//! and the user + long-term node factors are updated. The next-item
//! chain is trained by the random-negative steps only.

use crate::config::ModelConfig;
use crate::train::sampler::{sample_negative, PurchaseEvent};
use rand::rngs::StdRng;
use rand::Rng;
use taxrec_dataset::PurchaseLog;
use taxrec_factors::{ops, DriftCache, SharedFactors};
use taxrec_taxonomy::{ItemId, NodeId, PathTable, Taxonomy};

/// Borrowed view of the shared training state.
#[derive(Clone, Copy)]
pub(crate) struct SharedModel<'a> {
    pub cfg: &'a ModelConfig,
    pub tax: &'a Taxonomy,
    /// Item root paths, already truncated to the `U` levels that carry
    /// factors — the cutoff is baked in here.
    pub paths: &'a PathTable,
    pub users: &'a SharedFactors,
    pub nodes: &'a SharedFactors,
    pub nexts: &'a SharedFactors,
}

/// Which of the two node-offset matrices an operation touches.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mat {
    Long,
    Next,
}

/// Per-worker counters, merged into `TrainStats` after each epoch.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WorkerStats {
    pub steps: u64,
    pub sibling_steps: u64,
    pub skipped: u64,
    pub cache_flushes: u64,
}

/// Which shared matrix a deferred update targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    /// The user-factor matrix.
    User,
    /// The long-term node-offset matrix.
    Long,
    /// The next-item node-offset matrix.
    Next,
}

/// Deferred-update sink for deterministic training: instead of applying
/// row deltas to the shared matrices as they are computed, a worker
/// records them *in step order*. The driver applies the logs of all
/// workers back-to-back in worker order — which, with contiguous step
/// ranges per worker, is exactly the global step order — so the final
/// factors are bit-identical no matter how the steps were partitioned
/// (f32 addition is applied in one canonical sequence per row).
#[derive(Debug, Default)]
pub(crate) struct DeltaLog {
    targets: Vec<(Target, u32)>,
    data: Vec<f32>,
    k: usize,
}

impl DeltaLog {
    fn new(k: usize) -> DeltaLog {
        DeltaLog {
            targets: Vec::new(),
            data: Vec::new(),
            k,
        }
    }

    fn push(&mut self, target: Target, row: usize, delta: &[f32]) {
        debug_assert_eq!(delta.len(), self.k);
        self.targets.push((target, row as u32));
        self.data.extend_from_slice(delta);
    }

    /// Apply every recorded delta in recording order, then clear.
    fn drain_into(&mut self, ctx: &SharedModel<'_>) {
        for (i, &(target, row)) in self.targets.iter().enumerate() {
            let delta = &self.data[i * self.k..(i + 1) * self.k];
            let sf = match target {
                Target::User => ctx.users,
                Target::Long => ctx.nodes,
                Target::Next => ctx.nexts,
            };
            sf.add_to_row(row as usize, delta);
        }
        self.targets.clear();
        self.data.clear();
    }
}

/// Reusable per-step buffers (allocated once per worker per epoch).
struct StepBufs {
    q: Vec<f32>,
    u_row: Vec<f32>,
    vi: Vec<f32>,
    vj: Vec<f32>,
    diff: Vec<f32>,
    up_pos: Vec<f32>,
    up_neg: Vec<f32>,
    tmp: Vec<f32>,
    /// Suffix sums over the positive item's path offsets:
    /// `suffix[m] = Σ_{m' ≥ m} w_{path[m']}` laid out as `(len+1) × k`.
    suffix: Vec<f32>,
    /// `(item, β)` pairs for the Markov term of the current step.
    prev: Vec<(ItemId, f32)>,
}

impl StepBufs {
    fn new(k: usize, max_path: usize) -> StepBufs {
        StepBufs {
            q: vec![0.0; k],
            u_row: vec![0.0; k],
            vi: vec![0.0; k],
            vj: vec![0.0; k],
            diff: vec![0.0; k],
            up_pos: vec![0.0; k],
            up_neg: vec![0.0; k],
            tmp: vec![0.0; k],
            suffix: vec![0.0; (max_path + 1) * k],
            prev: Vec::with_capacity(16),
        }
    }
}

/// One SGD worker. Owns its RNG, drift caches, and scratch buffers.
pub(crate) struct Worker<'a> {
    ctx: SharedModel<'a>,
    rng: StdRng,
    node_cache: Option<DriftCache>,
    next_cache: Option<DriftCache>,
    /// `Some` in deterministic mode: updates are recorded instead of
    /// applied, and reads see the frozen batch-start factors.
    pending: Option<DeltaLog>,
    bufs: StepBufs,
    pub stats: WorkerStats,
}

impl<'a> Worker<'a> {
    pub fn new(ctx: SharedModel<'a>, rng: StdRng) -> Worker<'a> {
        let k = ctx.cfg.factors;
        let n_nodes = ctx.tax.num_nodes();
        let (node_cache, next_cache) = match ctx.cfg.cache_threshold {
            Some(th) => (
                Some(DriftCache::new(n_nodes, k, th)),
                Some(DriftCache::new(n_nodes, k, th)),
            ),
            None => (None, None),
        };
        let max_path = ctx
            .cfg
            .taxonomy_update_levels
            .min(ctx.tax.depth() + 1)
            .max(1);
        Worker {
            ctx,
            rng,
            node_cache,
            next_cache,
            pending: None,
            bufs: StepBufs::new(k, max_path),
            stats: WorkerStats::default(),
        }
    }

    /// Worker for [`crate::train::TfTrainer::fit_deterministic`]: no
    /// drift caches (their flush points depend on the partition), and
    /// every update lands in a [`DeltaLog`] instead of the shared
    /// matrices. The RNG is replaced per step by
    /// [`run_step_seeded`](Self::run_step_seeded).
    pub fn new_deterministic(ctx: SharedModel<'a>) -> Worker<'a> {
        use rand::SeedableRng;
        let k = ctx.cfg.factors;
        let mut w = Worker::new(ctx, StdRng::seed_from_u64(0));
        w.node_cache = None;
        w.next_cache = None;
        w.pending = Some(DeltaLog::new(k));
        w
    }

    /// Run `n` SGD steps over events drawn from `log` via the sampler.
    pub fn run_steps(
        &mut self,
        log: &PurchaseLog,
        index: &crate::train::sampler::PurchaseIndex,
        n: u64,
    ) {
        for _ in 0..n {
            let ev = index.sample(&mut self.rng);
            self.step(log, ev);
        }
        self.flush();
    }

    /// Run ONE step whose entire randomness (event draw, negative,
    /// sibling picks) comes from a fresh RNG seeded with `step_seed` —
    /// so the step's effect depends only on `(model state, step_seed)`,
    /// never on which worker ran it or what it ran before.
    pub fn run_step_seeded(
        &mut self,
        log: &PurchaseLog,
        index: &crate::train::sampler::PurchaseIndex,
        step_seed: u64,
    ) {
        use rand::SeedableRng;
        self.rng = StdRng::seed_from_u64(step_seed);
        let ev = index.sample(&mut self.rng);
        self.step(log, ev);
    }

    /// Apply (in recording order) and clear the deferred updates of
    /// deterministic mode. No-op for Hogwild workers.
    pub fn drain_pending(&mut self) {
        let ctx = self.ctx;
        if let Some(p) = &mut self.pending {
            p.drain_into(&ctx);
        }
    }

    /// Publish all cached updates (epoch barrier).
    pub fn flush(&mut self) {
        if let Some(c) = &mut self.node_cache {
            c.flush(self.ctx.nodes);
            self.stats.cache_flushes = c.flushes();
        }
        if let Some(c) = &mut self.next_cache {
            c.flush(self.ctx.nexts);
            self.stats.cache_flushes += c.flushes();
        }
    }

    /// Dispatch one training step. Every sampled purchase gets the
    /// random-negative BPR update (coarse learning); with probability
    /// `sibling_mix` it *additionally* produces the `D` sibling-based
    /// examples (fine-tuning) — the paper's "mix random sampling with
    /// sibling-based training to reap the benefits of each".
    pub fn step(&mut self, log: &PurchaseLog, ev: PurchaseEvent) {
        self.stats.steps += 1;
        self.negative_step(log, ev);
        if self.ctx.cfg.sibling_mix > 0.0 && self.rng.gen_bool(self.ctx.cfg.sibling_mix) {
            self.stats.sibling_steps += 1;
            self.sibling_step(log, ev);
        }
    }

    // ---- row access through the optional drift caches -----------------

    /// Internal (non-leaf) node rows are the contended ones worth caching.
    #[inline]
    fn is_hot(&self, row: usize) -> bool {
        self.ctx.tax.level(NodeId(row as u32)) < self.ctx.tax.depth()
    }

    fn read_row(&mut self, mat: Mat, row: usize, out: &mut [f32]) {
        let hot = self.is_hot(row);
        let (sf, cache) = match mat {
            Mat::Long => (self.ctx.nodes, &mut self.node_cache),
            Mat::Next => (self.ctx.nexts, &mut self.next_cache),
        };
        match cache {
            Some(c) if hot => out.copy_from_slice(c.read(sf, row)),
            _ => sf.read_row_into(row, out),
        }
    }

    fn update_row(&mut self, mat: Mat, row: usize, delta: &[f32]) {
        if let Some(p) = &mut self.pending {
            let target = match mat {
                Mat::Long => Target::Long,
                Mat::Next => Target::Next,
            };
            p.push(target, row, delta);
            return;
        }
        let hot = self.is_hot(row);
        let (sf, cache) = match mat {
            Mat::Long => (self.ctx.nodes, &mut self.node_cache),
            Mat::Next => (self.ctx.nexts, &mut self.next_cache),
        };
        match cache {
            Some(c) if hot => c.update(sf, row, delta),
            _ => sf.add_to_row(row, delta),
        }
    }

    /// User-row update, routed through the deterministic sink when one
    /// is armed (mirrors [`update_row`](Self::update_row)).
    fn update_user(&mut self, row: usize, delta: &[f32]) {
        match &mut self.pending {
            Some(p) => p.push(Target::User, row, delta),
            None => self.ctx.users.add_to_row(row, delta),
        }
    }

    /// Effective factor of `item` from matrix `mat` (path sum, Eq. 1),
    /// written into `out` using `tmp` as scratch.
    fn eff_item(&mut self, mat: Mat, item: ItemId, out_is_vi: bool) {
        // Work around borrow rules: take the buffers out, run, put back.
        let mut out = std::mem::take(if out_is_vi {
            &mut self.bufs.vi
        } else {
            &mut self.bufs.vj
        });
        let mut tmp = std::mem::take(&mut self.bufs.tmp);
        out.fill(0.0);
        for idx in 0..self.ctx.paths.path(item).len() {
            let n = self.ctx.paths.path(item)[idx] as usize;
            self.read_row(mat, n, &mut tmp);
            ops::add_assign(&tmp, &mut out);
        }
        self.bufs.tmp = tmp;
        if out_is_vi {
            self.bufs.vi = out;
        } else {
            self.bufs.vj = out;
        }
    }

    /// Build `q` and the `(ℓ, β_ℓ)` list for transaction `t` of user `u`.
    /// `history = log.user(u)[..t]`.
    fn build_query(&mut self, log: &PurchaseLog, user: usize, t: usize) {
        let cfg = self.ctx.cfg;
        self.ctx.users.read_row_into(user, &mut self.bufs.u_row);
        self.bufs.q.copy_from_slice(&self.bufs.u_row);
        self.bufs.prev.clear();
        if cfg.max_prev_transactions == 0 {
            return;
        }
        let history = &log.user(user)[..t];
        for n in 1..=cfg.max_prev_transactions {
            if n > history.len() {
                break;
            }
            let basket = &history[history.len() - n];
            if basket.is_empty() {
                continue;
            }
            let w = cfg.markov_weight(n) / basket.len() as f32;
            for &l in basket {
                // β_ℓ accumulates when ℓ appears in several prior baskets.
                match self.bufs.prev.iter_mut().find(|(it, _)| *it == l) {
                    Some((_, beta)) => *beta += w,
                    None => self.bufs.prev.push((l, w)),
                }
            }
        }
        // q += Σ β_ℓ v→_ℓ
        let mut q = std::mem::take(&mut self.bufs.q);
        let mut acc = std::mem::take(&mut self.bufs.up_pos); // borrow as scratch
        let prev = std::mem::take(&mut self.bufs.prev);
        for &(l, beta) in &prev {
            acc.fill(0.0);
            let mut tmp = std::mem::take(&mut self.bufs.tmp);
            for idx in 0..self.ctx.paths.path(l).len() {
                let n = self.ctx.paths.path(l)[idx] as usize;
                self.read_row(Mat::Next, n, &mut tmp);
                ops::add_assign(&tmp, &mut acc);
            }
            self.bufs.tmp = tmp;
            ops::axpy(beta, &acc, &mut q);
        }
        self.bufs.prev = prev;
        self.bufs.up_pos = acc;
        self.bufs.q = q;
    }

    // ---- the two step kinds -------------------------------------------

    /// Standard BPR step with a random catalog negative (Sec. 4.1).
    fn negative_step(&mut self, log: &PurchaseLog, ev: PurchaseEvent) {
        let (u, t) = (ev.user as usize, ev.tx as usize);
        let basket = &log.user(u)[t];
        let i = basket[ev.pos as usize];
        let Some(j) = sample_negative(basket, self.ctx.tax.num_items(), &mut self.rng) else {
            self.stats.skipped += 1;
            return;
        };

        self.build_query(log, u, t);
        self.eff_item(Mat::Long, i, true);
        self.eff_item(Mat::Long, j, false);

        let cfg = self.ctx.cfg;
        let (lr, lam) = (cfg.learning_rate, cfg.lambda);
        ops::sub_into(&self.bufs.vi, &self.bufs.vj, &mut self.bufs.diff);
        let s_i = ops::dot(&self.bufs.q, &self.bufs.vi);
        let s_j = ops::dot(&self.bufs.q, &self.bufs.vj);
        let c = 1.0 - ops::sigmoid(s_i - s_j);

        // User update: ε (c·diff − λ·v_u).
        {
            let mut up = std::mem::take(&mut self.bufs.tmp);
            up.fill(0.0);
            ops::axpy(lr * c, &self.bufs.diff, &mut up);
            ops::axpy(-lr * lam, &self.bufs.u_row, &mut up);
            self.update_user(u, &up);
            self.bufs.tmp = up;
        }

        // Long-term node updates along both paths.
        for z in 0..self.bufs.up_pos.len() {
            self.bufs.up_pos[z] = lr * (c * self.bufs.q[z] - lam * self.bufs.vi[z]);
            self.bufs.up_neg[z] = lr * (-c * self.bufs.q[z] - lam * self.bufs.vj[z]);
        }
        let up_pos = std::mem::take(&mut self.bufs.up_pos);
        let up_neg = std::mem::take(&mut self.bufs.up_neg);
        for idx in 0..self.ctx.paths.path(i).len() {
            let n = self.ctx.paths.path(i)[idx] as usize;
            self.update_row(Mat::Long, n, &up_pos);
        }
        for idx in 0..self.ctx.paths.path(j).len() {
            let n = self.ctx.paths.path(j)[idx] as usize;
            self.update_row(Mat::Long, n, &up_neg);
        }
        self.bufs.up_pos = up_pos;
        self.bufs.up_neg = up_neg;

        // Next-item updates: w→ path of every ℓ in the conditioning window
        // moves along c·β_ℓ·diff − λ·v→_ℓ.
        if !self.bufs.prev.is_empty() {
            let prev = std::mem::take(&mut self.bufs.prev);
            let mut up = std::mem::take(&mut self.bufs.up_pos);
            for &(l, beta) in &prev {
                // v→_ℓ into vj (vj is free now — j's factor was consumed).
                self.eff_item(Mat::Next, l, false);
                for ((u, &d), &v) in up.iter_mut().zip(&self.bufs.diff).zip(&self.bufs.vj) {
                    *u = lr * (c * beta * d - lam * v);
                }
                for idx in 0..self.ctx.paths.path(l).len() {
                    let n = self.ctx.paths.path(l)[idx] as usize;
                    self.update_row(Mat::Next, n, &up);
                }
            }
            self.bufs.up_pos = up;
            self.bufs.prev = prev;
        }
    }

    /// Sibling-based step (Sec. 4.2): one BPR update per taxonomy level,
    /// discriminating each node on the purchased item's path against a
    /// random sibling.
    fn sibling_step(&mut self, log: &PurchaseLog, ev: PurchaseEvent) {
        let (u, t) = (ev.user as usize, ev.tx as usize);
        let basket = &log.user(u)[t];
        let i = basket[ev.pos as usize];
        self.build_query(log, u, t);

        let cfg = self.ctx.cfg;
        let (lr, lam, k) = (cfg.learning_rate, cfg.lambda, cfg.factors);
        let path_len = self.ctx.paths.path(i).len();

        // Suffix sums of the path offsets: suffix[m] = Σ_{m' ≥ m} w_{path[m']}
        // so suffix[m] is the effective factor of path node m (within U).
        {
            let mut suffix = std::mem::take(&mut self.bufs.suffix);
            let mut tmp = std::mem::take(&mut self.bufs.tmp);
            suffix[path_len * k..(path_len + 1) * k].fill(0.0);
            for m in (0..path_len).rev() {
                let n = self.ctx.paths.path(i)[m] as usize;
                self.read_row(Mat::Long, n, &mut tmp);
                let (lo, hi) = suffix.split_at_mut((m + 1) * k);
                let dst = &mut lo[m * k..];
                dst.copy_from_slice(&hi[..k]);
                ops::add_assign(&tmp, dst);
            }
            self.bufs.tmp = tmp;
            self.bufs.suffix = suffix;
        }

        let start = self.ctx.cfg.sibling_skip_levels.min(path_len);
        for m in start..path_len {
            let node = NodeId(self.ctx.paths.path(i)[m]);
            let n_sib = self.ctx.tax.num_siblings(node);
            if n_sib == 0 {
                continue;
            }
            // Uniform sibling.
            let pick = self.rng.gen_range(0..n_sib);
            let Some(sib) = self.ctx.tax.siblings(node).nth(pick) else {
                continue;
            };

            // v_m = suffix[m]; v_s = suffix[m+1] + w_s (shared ancestors).
            let mut w_s = std::mem::take(&mut self.bufs.tmp);
            self.read_row(Mat::Long, sib.index(), &mut w_s);
            let suffix = &self.bufs.suffix;
            let v_m = &suffix[m * k..(m + 1) * k];
            let anc = &suffix[(m + 1) * k..(m + 2) * k];
            // diff = v_m − v_s = w_m − w_s; s_m − s_s = ⟨q, diff⟩.
            for z in 0..k {
                self.bufs.diff[z] = v_m[z] - (anc[z] + w_s[z]);
            }
            let c = 1.0 - ops::sigmoid(ops::dot(&self.bufs.q, &self.bufs.diff));

            // up_pos = ε(c·q − λ·v_m); up_neg = ε(−c·q − λ·v_s).
            for z in 0..k {
                let v_s = anc[z] + w_s[z];
                self.bufs.up_pos[z] = lr * (c * self.bufs.q[z] - lam * v_m[z]);
                self.bufs.up_neg[z] = lr * (-c * self.bufs.q[z] - lam * v_s);
            }
            self.bufs.tmp = w_s;

            // User moves along the level-m preference.
            {
                let mut up = std::mem::take(&mut self.bufs.tmp);
                up.fill(0.0);
                ops::axpy(lr * c, &self.bufs.diff, &mut up);
                ops::axpy(-lr * lam, &self.bufs.u_row, &mut up);
                self.update_user(u, &up);
                self.bufs.tmp = up;
            }

            // Both full paths get their update (shared ancestors receive
            // both, where the discriminative parts cancel and only the
            // regularisation remains — exactly Eq. 7 applied to the pair).
            let up_pos = std::mem::take(&mut self.bufs.up_pos);
            let up_neg = std::mem::take(&mut self.bufs.up_neg);
            for mm in m..path_len {
                let n = self.ctx.paths.path(i)[mm] as usize;
                self.update_row(Mat::Long, n, &up_pos);
            }
            self.update_row(Mat::Long, sib.index(), &up_neg);
            for mm in (m + 1)..path_len {
                let n = self.ctx.paths.path(i)[mm] as usize;
                self.update_row(Mat::Long, n, &up_neg);
            }
            self.bufs.up_pos = up_pos;
            self.bufs.up_neg = up_neg;

            // The suffix sums above are snapshots from before these
            // updates; SGD tolerates that staleness within a step (same
            // argument as the paper's cached/stale reads).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TfModel;
    use rand::SeedableRng;
    use std::sync::Arc;
    use taxrec_dataset::PurchaseLogBuilder;
    use taxrec_taxonomy::{Taxonomy, TaxonomyBuilder};

    /// Tiny fixed taxonomy: root → {catA, catB}; catA → {i0, i1};
    /// catB → {i2}.
    fn tiny_tax() -> Arc<Taxonomy> {
        let mut b = TaxonomyBuilder::new();
        let a = b.add_child(NodeId::ROOT).unwrap();
        let bb = b.add_child(NodeId::ROOT).unwrap();
        b.add_child(a).unwrap();
        b.add_child(a).unwrap();
        b.add_child(bb).unwrap();
        Arc::new(b.freeze())
    }

    fn log_one_purchase() -> PurchaseLog {
        let mut b = PurchaseLogBuilder::new();
        // Two transactions so the Markov term has history at t=1.
        b.push_user(vec![vec![ItemId(0)], vec![ItemId(1)]]);
        b.build()
    }

    struct Fixture {
        tax: Arc<Taxonomy>,
        log: PurchaseLog,
        cfg: ModelConfig,
        users: SharedFactors,
        nodes: SharedFactors,
        nexts: SharedFactors,
        paths: PathTable,
    }

    impl Fixture {
        fn new(cfg: ModelConfig) -> Fixture {
            let tax = tiny_tax();
            let log = log_one_purchase();
            let model = TfModel::init(cfg.clone(), Arc::clone(&tax), log.num_users(), 3);
            // Give nodes non-zero factors so margins are non-trivial.
            let mut node_m = taxrec_factors::FactorMatrix::gaussian(
                tax.num_nodes(),
                cfg.factors,
                0.1,
                &mut rand::rngs::StdRng::seed_from_u64(8),
            );
            let next_m = node_m.clone();
            node_m.row_mut(0).fill(0.0); // keep root neutral
            let _ = &model;
            Fixture {
                paths: PathTable::build(&tax, cfg.taxonomy_update_levels),
                users: SharedFactors::new(taxrec_factors::FactorMatrix::gaussian(
                    1,
                    cfg.factors,
                    0.1,
                    &mut rand::rngs::StdRng::seed_from_u64(9),
                )),
                nodes: SharedFactors::new(node_m),
                nexts: SharedFactors::new(next_m),
                tax,
                log,
                cfg,
            }
        }

        fn ctx(&self) -> SharedModel<'_> {
            SharedModel {
                cfg: &self.cfg,
                tax: &self.tax,
                paths: &self.paths,
                users: &self.users,
                nodes: &self.nodes,
                nexts: &self.nexts,
            }
        }

        /// BPR margin s(i) − s(j) for the (only) user at transaction `t`,
        /// computed from scratch against the current shared factors.
        fn margin(&self, t: usize, i: ItemId, j: ItemId) -> f32 {
            let k = self.cfg.factors;
            let mut q = vec![0.0f32; k];
            self.users.read_row_into(0, &mut q);
            if self.cfg.max_prev_transactions >= 1 && t >= 1 {
                let hist = &self.log.user(0)[..t];
                for n in 1..=self.cfg.max_prev_transactions.min(hist.len()) {
                    let basket = &hist[hist.len() - n];
                    let w = self.cfg.markov_weight(n) / basket.len() as f32;
                    for &l in basket {
                        let mut eff = vec![0.0f32; k];
                        let mut tmp = vec![0.0f32; k];
                        for &node in self.paths.path(l) {
                            self.nexts.read_row_into(node as usize, &mut tmp);
                            ops::add_assign(&tmp, &mut eff);
                        }
                        ops::axpy(w, &eff, &mut q);
                    }
                }
            }
            let eff = |item: ItemId| {
                let mut e = vec![0.0f32; k];
                let mut tmp = vec![0.0f32; k];
                for &node in self.paths.path(item) {
                    self.nodes.read_row_into(node as usize, &mut tmp);
                    ops::add_assign(&tmp, &mut e);
                }
                e
            };
            ops::dot(&q, &eff(i)) - ops::dot(&q, &eff(j))
        }
    }

    fn base_cfg(u: usize, b: usize) -> ModelConfig {
        let mut cfg = ModelConfig::tf(u, b)
            .with_factors(6)
            .with_learning_rate(0.1)
            .with_lambda(0.0)
            .with_sibling_mix(0.0);
        cfg.sibling_skip_levels = 0;
        cfg
    }

    /// With only 3 items and a 1-item basket {i0} (t=0), the negative is
    /// i1 or i2; either way the margin of the chosen pair must increase
    /// after the step (gradient ascent on ln σ(margin) with λ = 0).
    #[test]
    fn negative_step_increases_bpr_margin() {
        for (u, b) in [(1usize, 0usize), (2, 0), (3, 0), (2, 1)] {
            let f = Fixture::new(base_cfg(u, b));
            let m_before_1 = f.margin(1, ItemId(1), ItemId(0));
            let m_before_2 = f.margin(1, ItemId(1), ItemId(2));
            let mut w = Worker::new(f.ctx(), rand::rngs::StdRng::seed_from_u64(1));
            // Transaction t=1 contains item 1; the negative is 0 or 2.
            w.step(
                &f.log,
                PurchaseEvent {
                    user: 0,
                    tx: 1,
                    pos: 0,
                },
            );
            w.flush();
            let m_after_1 = f.margin(1, ItemId(1), ItemId(0));
            let m_after_2 = f.margin(1, ItemId(1), ItemId(2));
            assert!(
                m_after_1 > m_before_1 || m_after_2 > m_before_2,
                "TF({u},{b}): no margin improved \
                 ({m_before_1}->{m_after_1}, {m_before_2}->{m_after_2})"
            );
        }
    }

    #[test]
    fn step_with_markov_updates_next_factors() {
        let f = Fixture::new(base_cfg(3, 1));
        let before = f.nexts.snapshot();
        let mut w = Worker::new(f.ctx(), rand::rngs::StdRng::seed_from_u64(2));
        w.step(
            &f.log,
            PurchaseEvent {
                user: 0,
                tx: 1,
                pos: 0,
            },
        );
        w.flush();
        let after = f.nexts.snapshot();
        assert_ne!(before, after, "Markov step must move next-item factors");
    }

    #[test]
    fn step_without_markov_leaves_next_factors() {
        let f = Fixture::new(base_cfg(3, 0));
        let before = f.nexts.snapshot();
        let mut w = Worker::new(f.ctx(), rand::rngs::StdRng::seed_from_u64(2));
        w.step(
            &f.log,
            PurchaseEvent {
                user: 0,
                tx: 1,
                pos: 0,
            },
        );
        w.flush();
        assert_eq!(before, f.nexts.snapshot());
    }

    #[test]
    fn u1_step_touches_only_leaf_rows() {
        let f = Fixture::new(base_cfg(1, 0));
        let before = f.nodes.snapshot();
        let mut w = Worker::new(f.ctx(), rand::rngs::StdRng::seed_from_u64(3));
        w.step(
            &f.log,
            PurchaseEvent {
                user: 0,
                tx: 0,
                pos: 0,
            },
        );
        w.flush();
        let after = f.nodes.snapshot();
        // Interior rows (root=0, catA=1, catB=2) untouched with U = 1.
        for r in 0..3 {
            assert_eq!(before.row(r), after.row(r), "interior row {r} moved");
        }
        // At least one leaf row moved.
        assert!((3..6).any(|r| before.row(r) != after.row(r)));
    }

    #[test]
    fn sibling_step_moves_category_offsets() {
        let mut cfg = base_cfg(3, 0).with_sibling_mix(1.0);
        cfg.sibling_skip_levels = 1; // only category level in this 2-deep tree
        let f = Fixture::new(cfg);
        let before = f.nodes.snapshot();
        let mut w = Worker::new(f.ctx(), rand::rngs::StdRng::seed_from_u64(4));
        w.step(
            &f.log,
            PurchaseEvent {
                user: 0,
                tx: 0,
                pos: 0,
            },
        );
        w.flush();
        assert!(w.stats.sibling_steps == 1);
        let after = f.nodes.snapshot();
        // catA (row 1) and catB (row 2) must both move: the purchased
        // item's category and its sampled sibling.
        assert_ne!(before.row(1), after.row(1), "positive category frozen");
        assert_ne!(before.row(2), after.row(2), "sibling category frozen");
    }

    #[test]
    fn regularisation_shrinks_factors_without_signal() {
        // λ > 0 with zero learning signal (margin already huge) decays
        // weights: run many steps and check the norm does not blow up.
        let cfg = base_cfg(3, 0).with_lambda(0.05).with_learning_rate(0.05);
        let f = Fixture::new(cfg);
        let norm_before = f.nodes.snapshot().frob_norm_sq();
        let mut w = Worker::new(f.ctx(), rand::rngs::StdRng::seed_from_u64(5));
        for _ in 0..2000 {
            w.step(
                &f.log,
                PurchaseEvent {
                    user: 0,
                    tx: 0,
                    pos: 0,
                },
            );
        }
        w.flush();
        let norm_after = f.nodes.snapshot().frob_norm_sq();
        assert!(
            norm_after.is_finite() && norm_after < norm_before * 50.0,
            "norms exploded: {norm_before} -> {norm_after}"
        );
    }
}
