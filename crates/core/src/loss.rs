//! Estimating the BPR training objective (Eq. 5) for convergence
//! monitoring.
//!
//! The exact log-posterior sums over every `(u, t, i, j)` quadruple —
//! `O(purchases × items)` — so production monitoring samples it: draw
//! `samples` random quadruples exactly like the SGD sampler and average
//! `ln σ(s_t(i) − s_t(j))`, then add the regulariser. Deterministic per
//! seed, so successive epochs are comparable.

use crate::model::TfModel;
use crate::scoring::Scorer;
use crate::train::sampler::{sample_negative, PurchaseIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use taxrec_dataset::PurchaseLog;
use taxrec_factors::ops;

/// A sampled estimate of the objective's two terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BprLoss {
    /// Mean `ln σ(s(i) − s(j))` over the sampled quadruples (≤ 0; closer
    /// to 0 is better).
    pub mean_log_likelihood: f64,
    /// `λ‖Θ‖²` over all factor matrices.
    pub regularizer: f64,
    /// Quadruples actually scored.
    pub samples: usize,
}

impl BprLoss {
    /// The penalised objective (to be *maximised*): mean log-likelihood
    /// minus the regulariser normalised per sample.
    pub fn objective(&self) -> f64 {
        self.mean_log_likelihood - self.regularizer / self.samples.max(1) as f64
    }
}

/// Sample the BPR objective of `model` on `log`.
pub fn estimate_bpr_loss(model: &TfModel, log: &PurchaseLog, samples: usize, seed: u64) -> BprLoss {
    let scorer = Scorer::new(model);
    let index = PurchaseIndex::build(log);
    let lambda = model.config().lambda as f64;
    let reg = lambda * (model_frob(model));
    if index.is_empty() || samples == 0 {
        return BprLoss {
            mean_log_likelihood: 0.0,
            regularizer: reg,
            samples: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = vec![0.0f32; model.k()];
    let mut total = 0.0f64;
    let mut n = 0usize;
    for _ in 0..samples {
        let ev = index.sample(&mut rng);
        let (u, t) = (ev.user as usize, ev.tx as usize);
        let basket = &log.user(u)[t];
        let i = basket[ev.pos as usize];
        let Some(j) = sample_negative(basket, model.num_items(), &mut rng) else {
            continue;
        };
        scorer.query_into(u, &log.user(u)[..t], &mut q);
        let margin = scorer.score_item(&q, i) - scorer.score_item(&q, j);
        // ln σ(m) computed stably: −ln(1 + e^{−m}).
        let ll = if margin > 0.0 {
            -(1.0 + (-margin as f64).exp()).ln()
        } else {
            margin as f64 - (1.0 + (margin as f64).exp()).ln()
        };
        total += ll;
        n += 1;
    }
    BprLoss {
        mean_log_likelihood: total / n.max(1) as f64,
        regularizer: reg,
        samples: n,
    }
}

fn model_frob(model: &TfModel) -> f64 {
    // ‖Θ‖² over user factors and both node-offset matrices — the same
    // parameters Eq. 5 regularises.
    let mut total = 0.0f64;
    for u in 0..model.num_users() {
        total += ops::l2_norm_sq(model.user_factor(u)) as f64;
    }
    for n in model.taxonomy().node_ids() {
        total += ops::l2_norm_sq(model.node_offset(n)) as f64;
        total += ops::l2_norm_sq(model.next_offset(n)) as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::train::{untrained_model, TfTrainer};
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};

    fn data() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny().with_users(800), 13)
    }

    #[test]
    fn log_likelihood_is_nonpositive() {
        let d = data();
        let m = untrained_model(ModelConfig::tf(4, 0), &d.taxonomy, d.train.num_users(), 1);
        let l = estimate_bpr_loss(&m, &d.train, 500, 9);
        assert!(l.mean_log_likelihood <= 0.0);
        assert!(l.samples > 400);
        assert!(l.regularizer >= 0.0);
    }

    #[test]
    fn untrained_zero_offsets_give_ln_half() {
        // All item scores are 0 → margin 0 → ln σ(0) = ln 0.5.
        let d = data();
        let m = untrained_model(ModelConfig::tf(4, 0), &d.taxonomy, d.train.num_users(), 1);
        let l = estimate_bpr_loss(&m, &d.train, 300, 2);
        assert!(
            (l.mean_log_likelihood - 0.5f64.ln()).abs() < 1e-6,
            "{}",
            l.mean_log_likelihood
        );
    }

    #[test]
    fn training_improves_the_objective() {
        let d = data();
        let cfg = ModelConfig::tf(4, 1).with_factors(8);
        let before = {
            let m = untrained_model(cfg.clone(), &d.taxonomy, d.train.num_users(), 3);
            estimate_bpr_loss(&m, &d.train, 2000, 5)
        };
        let after = {
            let m = TfTrainer::new(cfg.with_epochs(8), &d.taxonomy).fit(&d.train, 3);
            estimate_bpr_loss(&m, &d.train, 2000, 5)
        };
        assert!(
            after.mean_log_likelihood > before.mean_log_likelihood + 0.05,
            "objective did not improve: {} -> {}",
            before.mean_log_likelihood,
            after.mean_log_likelihood
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data();
        // Gaussian node init so different quadruples give different
        // margins (zero-init scores are identically 0 for every seed).
        let m = untrained_model(
            ModelConfig::tf(3, 0).with_node_init_sigma(0.1),
            &d.taxonomy,
            d.train.num_users(),
            1,
        );
        let a = estimate_bpr_loss(&m, &d.train, 200, 7);
        let b = estimate_bpr_loss(&m, &d.train, 200, 7);
        assert_eq!(a, b);
        let c = estimate_bpr_loss(&m, &d.train, 200, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_log_yields_zero_samples() {
        let d = data();
        let m = untrained_model(ModelConfig::tf(2, 0), &d.taxonomy, 0, 1);
        let empty = taxrec_dataset::PurchaseLogBuilder::new().build();
        let l = estimate_bpr_loss(&m, &empty, 100, 1);
        assert_eq!(l.samples, 0);
        assert_eq!(l.mean_log_likelihood, 0.0);
    }

    #[test]
    fn objective_combines_terms() {
        let l = BprLoss {
            mean_log_likelihood: -0.5,
            regularizer: 10.0,
            samples: 100,
        };
        assert!((l.objective() - (-0.5 - 0.1)).abs() < 1e-12);
    }
}
