//! Non-personalised baselines.
//!
//! The paper's comparisons are the MF(B) family ([`crate::ModelConfig::mf`]),
//! which this crate recovers as TF special cases. This module adds the
//! two trivial baselines every ranking paper implicitly benchmarks
//! against — global popularity and random — both evaluated with the same
//! protocol as the personalised models via [`crate::eval::evaluate_static`].

use crate::eval::{evaluate_static, EvalResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taxrec_dataset::{stats, PurchaseLog};

/// Global popularity scores: `score[i]` = training purchase count of `i`.
///
/// A strong non-personalised baseline under heavy-tailed demand.
pub fn popularity_scores(train: &PurchaseLog, num_items: usize) -> Vec<f32> {
    stats::item_popularity(train, num_items)
        .into_iter()
        .map(|c| c as f32)
        .collect()
}

/// Uniform-random scores (chance level ≈ 0.5 AUC) — the floor.
pub fn random_scores(num_items: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_items).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Evaluate the popularity baseline with the standard protocol.
pub fn evaluate_popularity(
    train: &PurchaseLog,
    test: &PurchaseLog,
    num_items: usize,
    hit_k: usize,
) -> EvalResult {
    evaluate_static(&popularity_scores(train, num_items), train, test, hit_k)
}

/// Evaluate the random baseline with the standard protocol.
pub fn evaluate_random(
    train: &PurchaseLog,
    test: &PurchaseLog,
    num_items: usize,
    hit_k: usize,
    seed: u64,
) -> EvalResult {
    evaluate_static(&random_scores(num_items, seed), train, test, hit_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};

    fn data() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny().with_users(1000), 8)
    }

    #[test]
    fn popularity_beats_random() {
        let d = data();
        let n = d.taxonomy.num_items();
        let pop = evaluate_popularity(&d.train, &d.test, n, 10);
        let rnd = evaluate_random(&d.train, &d.test, n, 10, 1);
        assert!(pop.auc.unwrap() > rnd.auc.unwrap() + 0.05);
    }

    #[test]
    fn random_is_chance_level() {
        let d = data();
        let n = d.taxonomy.num_items();
        let rnd = evaluate_random(&d.train, &d.test, n, 10, 2);
        let auc = rnd.auc.unwrap();
        assert!((0.45..0.55).contains(&auc), "random AUC {auc}");
    }

    #[test]
    fn popularity_scores_match_counts() {
        let d = data();
        let n = d.taxonomy.num_items();
        let scores = popularity_scores(&d.train, n);
        let counts = stats::item_popularity(&d.train, n);
        assert_eq!(scores.len(), n);
        for (s, c) in scores.iter().zip(&counts) {
            assert_eq!(*s, *c as f32);
        }
    }

    #[test]
    fn trained_model_beats_popularity() {
        // The personalisation sanity check: TF must out-rank the best
        // non-personalised baseline.
        use crate::{
            eval::{evaluate, EvalConfig},
            ModelConfig, TfTrainer,
        };
        let d = data();
        let model = TfTrainer::new(
            ModelConfig::tf(4, 0).with_factors(16).with_epochs(12),
            &d.taxonomy,
        )
        .fit(&d.train, 3);
        let tf = evaluate(&model, &d.train, &d.test, &EvalConfig::fast());
        let pop = evaluate_popularity(&d.train, &d.test, d.taxonomy.num_items(), 10);
        assert!(
            tf.auc.unwrap() > pop.auc.unwrap(),
            "TF {:.4} must beat popularity {:.4}",
            tf.auc.unwrap(),
            pop.auc.unwrap()
        );
    }
}
