//! Model and training hyper-parameters.
//!
//! The paper parameterises every system as `TF(U, B)`:
//!
//! * `U` = `taxonomyUpdateLevels` — how many taxonomy levels, counted
//!   from the items upward, receive latent factors. `U = 1` uses only
//!   item-level factors, recovering plain matrix factorisation.
//! * `B` = `maxPrevtransactions` — the order of the Markov chain over
//!   previous baskets. `B = 0` ignores time; `U = 1, B = 1` recovers
//!   FPMC (Rendle et al. 2010).

use serde::{Deserialize, Serialize};

/// Hyper-parameters of a TF(U, B) model and its SGD training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Factor dimensionality `K` (paper sweeps 10–50).
    pub factors: usize,
    /// `taxonomyUpdateLevels` (U): number of levels, from items upward,
    /// that carry factors. Clamped to the taxonomy depth at build time.
    pub taxonomy_update_levels: usize,
    /// `maxPrevtransactions` (B): Markov-chain order for short-term
    /// interest. 0 disables the next-item term entirely.
    pub max_prev_transactions: usize,
    /// SGD learning rate ε.
    pub learning_rate: f32,
    /// L2 regulariser λ (∝ 1/σ² of the Gaussian prior).
    pub lambda: f32,
    /// Std-dev of the Gaussian *user*-factor initialisation (symmetry
    /// breaking).
    pub init_sigma: f32,
    /// Std-dev of the node-offset initialisation. The default `0.0`
    /// starts every offset at the prior mean, which makes a never-trained
    /// item's effective factor exactly its super-category's — the paper's
    /// cold-start estimate (Fig. 7c). Set `> 0.0` for the Gaussian-init
    /// ablation.
    pub node_init_sigma: f32,
    /// Decay base α for the higher-order weights `α_n = α·e^(−n/N)`
    /// (Sec. 3.2). Irrelevant when `max_prev_transactions == 0`.
    pub alpha: f32,
    /// Training epochs; one epoch ≈ one pass over all purchase events.
    pub epochs: usize,
    /// Probability that a sampled purchase *additionally* produces the
    /// per-level sibling-based examples of Sec. 4.2 (every purchase gets
    /// the random-negative update regardless) — the paper "mixes random
    /// sampling with sibling-based training".
    pub sibling_mix: f64,
    /// Skip this many levels from the bottom in sibling-based training.
    /// A sibling at the item or lowest-category level is often a likely
    /// *future purchase* (accessory dynamics), so discriminating against
    /// it injects label noise; siblings at higher levels carry clean
    /// preference signal. Default `2` starts above the accessory radius
    /// of the synthetic data; set `0` to reproduce the paper's all-levels
    /// variant (ablated in `EXPERIMENTS.md`).
    pub sibling_skip_levels: usize,
    /// Negative samples drawn per positive purchase event.
    pub negatives_per_positive: usize,
    /// Drift-cache flush threshold for parallel training of hot
    /// (internal-node) rows; `None` disables caching (paper compares
    /// `th = 0.1` against no caching in Fig. 8).
    pub cache_threshold: Option<f32>,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            factors: 16,
            taxonomy_update_levels: 4,
            max_prev_transactions: 0,
            learning_rate: 0.05,
            lambda: 0.005,
            init_sigma: 0.1,
            node_init_sigma: 0.0,
            alpha: 1.0,
            epochs: 20,
            sibling_mix: 0.5,
            sibling_skip_levels: 2,
            negatives_per_positive: 1,
            cache_threshold: None,
        }
    }
}

impl ModelConfig {
    /// The paper's `TF(U, B)` constructor.
    pub fn tf(update_levels: usize, prev_transactions: usize) -> Self {
        ModelConfig {
            taxonomy_update_levels: update_levels,
            max_prev_transactions: prev_transactions,
            ..Self::default()
        }
    }

    /// The paper's `MF(B)` baseline: no taxonomy (`U = 1`), optional
    /// Markov order. `MF(0)` is BPR-MF, `MF(1)` is FPMC. Sibling
    /// training is meaningless without taxonomy levels and is disabled.
    pub fn mf(prev_transactions: usize) -> Self {
        ModelConfig {
            taxonomy_update_levels: 1,
            max_prev_transactions: prev_transactions,
            sibling_mix: 0.0,
            ..Self::default()
        }
    }

    /// Builder-style override of `K`.
    pub fn with_factors(mut self, k: usize) -> Self {
        self.factors = k;
        self
    }

    /// Builder-style override of the epoch count.
    pub fn with_epochs(mut self, e: usize) -> Self {
        self.epochs = e;
        self
    }

    /// Builder-style override of the sibling-training mix.
    pub fn with_sibling_mix(mut self, mix: f64) -> Self {
        self.sibling_mix = mix;
        self
    }

    /// Builder-style override of the learning rate.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Builder-style override of the regulariser.
    pub fn with_lambda(mut self, l: f32) -> Self {
        self.lambda = l;
        self
    }

    /// Builder-style override of the drift-cache threshold.
    pub fn with_cache_threshold(mut self, th: Option<f32>) -> Self {
        self.cache_threshold = th;
        self
    }

    /// Builder-style override of the node-offset init σ (Gaussian-init
    /// ablation; `0.0` is the paper's cold-start-friendly zero init).
    pub fn with_node_init_sigma(mut self, sigma: f32) -> Self {
        self.node_init_sigma = sigma;
        self
    }

    /// The decay weight `α_n = α · e^(−n/N)` of the `n`-th previous
    /// basket (`n ≥ 1`), with `N = max_prev_transactions`.
    pub fn markov_weight(&self, n: usize) -> f32 {
        debug_assert!(n >= 1);
        let big_n = self.max_prev_transactions.max(1) as f32;
        self.alpha * (-(n as f32) / big_n).exp()
    }

    /// Validate ranges, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.factors == 0 {
            return Err("factors must be >= 1".into());
        }
        if self.taxonomy_update_levels == 0 {
            return Err("taxonomy_update_levels must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.sibling_mix) {
            return Err(format!("sibling_mix {} outside [0,1]", self.sibling_mix));
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(format!(
                "learning_rate {} must be positive",
                self.learning_rate
            ));
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(format!("lambda {} must be non-negative", self.lambda));
        }
        if self.negatives_per_positive == 0 {
            return Err("negatives_per_positive must be >= 1".into());
        }
        if self.node_init_sigma < 0.0 || !self.node_init_sigma.is_finite() {
            return Err(format!(
                "node_init_sigma {} must be non-negative",
                self.node_init_sigma
            ));
        }
        if let Some(th) = self.cache_threshold {
            if th < 0.0 || !th.is_finite() {
                return Err(format!("cache_threshold {th} must be non-negative"));
            }
        }
        Ok(())
    }

    /// Short system name in the paper's notation, e.g. `TF(4,1)` / `MF(0)`.
    pub fn system_name(&self) -> String {
        if self.taxonomy_update_levels == 1 {
            format!("MF({})", self.max_prev_transactions)
        } else {
            format!(
                "TF({},{})",
                self.taxonomy_update_levels, self.max_prev_transactions
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_and_mf_constructors() {
        let tf = ModelConfig::tf(4, 2);
        assert_eq!(tf.taxonomy_update_levels, 4);
        assert_eq!(tf.max_prev_transactions, 2);
        assert_eq!(tf.system_name(), "TF(4,2)");
        let mf = ModelConfig::mf(1);
        assert_eq!(mf.taxonomy_update_levels, 1);
        assert_eq!(mf.sibling_mix, 0.0);
        assert_eq!(mf.system_name(), "MF(1)");
    }

    #[test]
    fn markov_weights_decay() {
        let cfg = ModelConfig::tf(4, 3);
        assert!(cfg.markov_weight(1) > cfg.markov_weight(2));
        assert!(cfg.markov_weight(2) > cfg.markov_weight(3));
        assert!(cfg.markov_weight(1) <= cfg.alpha);
    }

    #[test]
    fn default_validates() {
        assert!(ModelConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(ModelConfig {
            factors: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig {
            taxonomy_update_levels: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig {
            sibling_mix: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig {
            learning_rate: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig {
            lambda: f32::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig {
            negatives_per_positive: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig {
            cache_threshold: Some(-1.0),
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn builders_chain() {
        let c = ModelConfig::tf(3, 1)
            .with_factors(32)
            .with_epochs(5)
            .with_learning_rate(0.1)
            .with_lambda(0.02)
            .with_sibling_mix(0.25)
            .with_cache_threshold(Some(0.1));
        assert_eq!(c.factors, 32);
        assert_eq!(c.epochs, 5);
        assert_eq!(c.cache_threshold, Some(0.1));
        assert!(c.validate().is_ok());
    }
}
