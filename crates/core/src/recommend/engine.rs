//! The batched recommendation engine.
//!
//! [`RecommendEngine`] is the serving-side entry point of the crate: it
//! freezes a trained [`TfModel`] into scan-friendly state once, then
//! answers any number of single or batched top-K requests without
//! further allocation beyond per-worker scratch. See the module docs of
//! [`crate::recommend`] for the data-path overview.

use super::batch::{self, Shard};
use super::kernel::{F32Kernel, QuantQuery};
use super::shards::{self, CatalogPartition};
use super::topk::{TopK, SCORE_BLOCK};
use crate::inference::{cascade, CascadeConfig};
use crate::model::TfModel;
use crate::obs::{ScanMetrics, TraceBuilder};
use crate::scoring::Scorer;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use taxrec_dataset::Transaction;
use taxrec_factors::{FactorMatrix, GrowMatrix, QuantMatrix};
use taxrec_taxonomy::ItemId;

/// Knobs of the int8-quantized scan backend.
///
/// The quantized pass prunes with approximate int8 scores and
/// rescores in exact f32 only the rows still competing within the
/// rigorous error bound ([`QuantQuery::error_bound`]), so results are
/// exact unconditionally. `pool_size(k) = max(pool_factor · k,
/// k + pool_margin)` is the per-shard **rescore budget**: a scan
/// whose exact-rescore count stays within it is counted *sufficient*
/// in [`RecommendEngine::quant_pool_stats`] — the quantized grid is
/// resolving the top of the ranking cheaply — while overruns are
/// counted *insufficient*. The budget is an observability threshold,
/// not a correctness knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedConfig {
    /// Pool size as a multiple of the requested `k` (default 4).
    pub pool_factor: usize,
    /// Minimum extra candidates beyond `k` (default 32).
    pub pool_margin: usize,
}

impl Default for QuantizedConfig {
    fn default() -> QuantizedConfig {
        QuantizedConfig {
            pool_factor: 4,
            pool_margin: 32,
        }
    }
}

impl QuantizedConfig {
    /// Candidate-pool size for a request wanting `k` items.
    pub fn pool_size(&self, k: usize) -> usize {
        self.pool_factor
            .saturating_mul(k)
            .max(k.saturating_add(self.pool_margin))
    }
}

/// Which inference path serves a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Score every catalog item (exact).
    Exhaustive,
    /// Beam through the taxonomy with the given per-level keep
    /// fractions (approximate; Sec. 5.1). Keep fractions of 1.0
    /// reproduce the exhaustive ranking.
    Cascaded(CascadeConfig),
    /// Int8-quantized branch-and-bound scan: approximate int8 scores
    /// prune the catalog and only rows still competing within the
    /// rigorous error bound are rescored in exact f32 — always the
    /// exhaustive ranking, with
    /// [`RecommendEngine::quant_pool_stats`] counting scans whose
    /// rescore count stayed within the configured budget.
    Quantized(QuantizedConfig),
}

/// One user's slot in a batch.
#[derive(Debug, Clone, Copy)]
pub struct RecommendRequest<'a> {
    /// User row in the model.
    pub user: usize,
    /// The user's transaction history, oldest first (the Markov term
    /// conditions on the last `B` baskets).
    pub history: &'a [Transaction],
    /// How many items to return.
    pub k: usize,
    /// Items to skip, **sorted ascending** (typically the user's past
    /// purchases).
    pub exclude: &'a [ItemId],
}

impl<'a> RecommendRequest<'a> {
    /// Request `k` items for `user` with no history or exclusions.
    pub fn simple(user: usize, k: usize) -> RecommendRequest<'a> {
        RecommendRequest {
            user,
            history: &[],
            k,
            exclude: &[],
        }
    }
}

/// Per-worker scratch: allocated once, reused across every request the
/// worker serves.
#[derive(Debug, Default)]
struct Scratch {
    query: Vec<f32>,
    block: Vec<f32>,
    topk: TopK,
    /// Int8 dot buffer of the quantized scan, one chunk at a time.
    qdots: Vec<i32>,
    /// Approximate-score buffer of the quantized scan, one chunk at a
    /// time.
    qapprox: Vec<f32>,
    /// One drained top-K list per catalog shard, reused across requests.
    partials: Vec<Vec<(ItemId, f32)>>,
}

impl Scratch {
    fn new(k_factors: usize) -> Scratch {
        Scratch {
            query: vec![0.0; k_factors],
            block: vec![0.0; SCORE_BLOCK],
            topk: TopK::new(),
            qdots: Vec::new(),
            qapprox: Vec::new(),
            partials: Vec::new(),
        }
    }
}

/// One contiguous slice of the catalog, owning the dense effective
/// factors of items `[first, first + items.rows())` plus their int8
/// shadow for the quantized first pass.
#[derive(Debug, Clone)]
struct CatalogShard {
    first: usize,
    items: GrowMatrix,
    quant: QuantMatrix,
}

/// Blocked top-K scan of one shard: dense dot products per block, then
/// a thresholded sweep into the (reset) reusable heap. Identical kernel
/// to the unsharded scan — only the item-id offset differs. Returns
/// `(rows scanned, blocks scored)` for the per-shard scan counters.
fn scan_shard(
    shard: &CatalogShard,
    kernel: F32Kernel,
    query: &[f32],
    exclude: &[ItemId],
    k: usize,
    topk: &mut TopK,
    block: &mut [f32],
) -> (u64, u64) {
    let k_factors = query.len();
    let mut blocks = 0u64;
    topk.reset(k);
    // One contiguous segment offline; base + appended tail after live
    // catalog growth, each scanned with the same blocked kernel.
    for (seg_start, seg) in shard.items.segments() {
        let seg_rows = seg.rows();
        let flat = seg.as_slice();
        let mut first = 0usize;
        while first < seg_rows {
            let len = SCORE_BLOCK.min(seg_rows - first);
            blocks += 1;
            let rows = &flat[first * k_factors..(first + len) * k_factors];
            let scores = &mut block[..len];
            kernel.score_block(query, rows, scores);
            let threshold = topk.threshold();
            for (off, &s) in scores.iter().enumerate() {
                // Fast reject: full heaps only admit strictly better
                // scores, and the threshold only rises within a block.
                if s <= threshold && topk.len() >= k {
                    continue;
                }
                let item = ItemId((shard.first + seg_start + first + off) as u32);
                if exclude.binary_search(&item).is_ok() {
                    continue;
                }
                topk.offer(item, s);
            }
            first += len;
        }
    }
    (shard.items.rows() as u64, blocks)
}

/// Quantized branch-and-bound scan of one shard.
///
/// Per chunk: exact int8 block dots ([`F32Kernel::dot_i8_block`]),
/// the vectorized affine combine ([`QuantQuery::approx_block`]), then
/// a pruned exact pass — a row is rescored with the exact f32 dot
/// only when its approximate score plus the rigorous error bound
/// ([`QuantQuery::error_bound`]) still reaches the evolving k-th
/// exact score. Every row whose true score could belong to (or tie
/// into) the top-K is therefore rescored — skipping on a tie would
/// lose the id tie-break — so the result is exactly the exhaustive
/// ranking under every kernel dispatch: the integer dots and the
/// pure-f32 combine are dispatch-invariant, and the exact rescore
/// uses the bit-identical f32 kernel family
/// ([`Scorer::score_item`]'s).
///
/// Returns `(rows scanned, within budget)`: the scan is *sufficient*
/// when the int8 pre-filter kept the number of exact rescores within
/// the configured budget `pool_k`, the signal surfaced by
/// [`RecommendEngine::quant_pool_stats`] that the quantized grid is
/// still resolving the top of the ranking cheaply.
#[allow(clippy::too_many_arguments)]
fn scan_shard_quantized(
    shard: &CatalogShard,
    kernel: F32Kernel,
    qq: &QuantQuery,
    query: &[f32],
    exclude: &[ItemId],
    k: usize,
    pool_k: usize,
    dots: &mut Vec<i32>,
    approx: &mut Vec<f32>,
    topk: &mut TopK,
) -> (u64, bool) {
    // Rigorous slack for this (query, table) pair: every row's exact
    // f32 score is within `eps` of its approximate score.
    let eps = qq.error_bound(shard.quant.max_scale(), shard.quant.max_abs_sum());
    topk.reset(k);
    // Rows with approximation strictly below `threshold − eps` cannot
    // reach the k-th exact score and are skipped without touching the
    // f32 table. −∞ until the heap fills (every row competes); +∞ for
    // k = 0 (nothing does).
    let mut cutoff = if k == 0 {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };
    let mut rescored = 0usize;
    dots.clear();
    dots.resize(taxrec_factors::COW_CHUNK_ROWS, 0);
    approx.clear();
    approx.resize(taxrec_factors::COW_CHUNK_ROWS, 0.0);
    let mut base = 0usize;
    for chunk in shard.quant.chunks() {
        let n = chunk.rows();
        let dots = &mut dots[..n];
        let approx = &mut approx[..n];
        kernel.dot_i8_block(qq.codes(), chunk.flat_codes(), dots);
        qq.approx_block(dots, chunk.mins(), chunk.scales(), approx);
        for (r, &s) in approx.iter().enumerate() {
            if (s as f64) < cutoff {
                continue;
            }
            let item = ItemId((shard.first + base + r) as u32);
            if exclude.binary_search(&item).is_ok() {
                continue;
            }
            topk.offer(item, kernel.dot(query, shard.items.row(base + r)));
            rescored += 1;
            if topk.len() == k {
                cutoff = topk.threshold() as f64 - eps;
            }
        }
        base += n;
    }
    (shard.quant.rows() as u64, rescored <= pool_k)
}

/// A frozen model ready to serve batched top-K recommendations.
///
/// Construction materialises the effective factors of every taxonomy
/// node (via [`Scorer`]) *and* packs the leaf factors into a dense
/// `num_items × K` matrix so the exhaustive path scans contiguous
/// memory instead of hopping through the node arena.
///
/// ```
/// use taxrec_core::recommend::{Backend, RecommendEngine, RecommendRequest};
/// use taxrec_core::{ModelConfig, TfTrainer};
/// use taxrec_dataset::{DatasetConfig, SyntheticDataset};
///
/// let data = SyntheticDataset::generate(&DatasetConfig::tiny(), 42);
/// let model = TfTrainer::new(
///     ModelConfig::tf(4, 1).with_factors(8).with_epochs(2),
///     &data.taxonomy,
/// )
/// .fit(&data.train, 42);
///
/// let engine = RecommendEngine::new(&model);
/// let requests: Vec<RecommendRequest> = (0..8)
///     .map(|u| RecommendRequest {
///         user: u,
///         history: data.train.user(u),
///         k: 5,
///         exclude: &[],
///     })
///     .collect();
/// let results = engine.recommend_batch(&requests, 2);
/// assert_eq!(results.len(), 8);
/// assert!(results.iter().all(|r| r.len() == 5));
/// ```
///
/// `M` is the model holder: `&TfModel` for the borrowed offline shape,
/// `Arc<TfModel>` for owned snapshots published by [`crate::live`]. The
/// dense item matrix is partitioned into contiguous, taxonomy-aligned
/// catalog shards (see [`crate::recommend::shards`]); each shard's
/// matrix is a [`GrowMatrix`], so the successor engine after a catalog
/// change ([`RecommendEngine::grown_from`]) appends the new items' rows
/// to the owning shard's tail instead of recopying any scan state.
#[derive(Debug)]
pub struct RecommendEngine<M: Deref<Target = TfModel>> {
    scorer: Scorer<M>,
    /// Contiguous catalog shards in item-id order; shard `s` holds the
    /// dense effective factors of items `[first_s, first_{s+1})`.
    shards: Vec<CatalogShard>,
    backend: Backend,
    /// The f32 dot-product kernel every scan dispatches through,
    /// selected once at construction ([`F32Kernel::select`]) and
    /// inherited by successor engines. Dispatch is bit-invariant.
    kernel: F32Kernel,
    /// Quantized-pool budget counters (scans / within budget / over
    /// budget), carried across successor engines.
    quant_pool: Arc<QuantPoolCounters>,
    /// Per-shard scan counters (rows, blocks, busy µs) registered in
    /// the unified metrics registry. `None` outside an observed serving
    /// context: recording then costs nothing, not even a clock read.
    scan_metrics: Option<Arc<ScanMetrics>>,
}

/// Lock-free counters behind [`RecommendEngine::quant_pool_stats`].
#[derive(Debug, Default)]
struct QuantPoolCounters {
    scans: AtomicU64,
    sufficient: AtomicU64,
    insufficient: AtomicU64,
}

/// Budget outcomes of the quantized backend's shard scans, across
/// every request this engine (and its ancestors) served. Results are
/// bit-identical either way — the budget is pure observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantPoolStats {
    /// Quantized shard scans served.
    pub scans: u64,
    /// Scans whose exact-rescore work stayed within the pool budget.
    pub sufficient: u64,
    /// Scans whose exact-rescore work overran the pool budget.
    pub insufficient: u64,
}

use crate::scoring::COMPACT_TAIL_FRACTION;

impl<M: Deref<Target = TfModel>> RecommendEngine<M> {
    /// Engine over the exhaustive backend, unsharded.
    pub fn new(model: M) -> RecommendEngine<M> {
        Self::with_backend(model, Backend::Exhaustive)
    }

    /// Engine over an explicit backend, unsharded (one catalog shard —
    /// the scatter-gather merge degenerates to the identity).
    pub fn with_backend(model: M, backend: Backend) -> RecommendEngine<M> {
        Self::with_backend_sharded(model, backend, 1)
    }

    /// Engine whose item catalog is partitioned into `scan_shards`
    /// contiguous, taxonomy-subtree-aligned shards (clamped to
    /// `[1, num_items]`; see [`CatalogPartition::plan`]). The served
    /// ranking is bit-for-bit identical at every shard count — sharding
    /// only changes how the exhaustive scan is laid out and (via
    /// [`recommend_scatter`](Self::recommend_scatter)) parallelised.
    pub fn with_backend_sharded(
        model: M,
        backend: Backend,
        scan_shards: usize,
    ) -> RecommendEngine<M> {
        let scorer = Scorer::new(model);
        let model = scorer.model();
        let k = model.k();
        let partition = CatalogPartition::plan(model.taxonomy(), scan_shards);
        let shards = partition
            .ranges()
            .iter()
            .map(|range| {
                let mut m = FactorMatrix::zeros(range.len(), k);
                for (row, i) in (range.start..range.end).enumerate() {
                    m.row_mut(row)
                        .copy_from_slice(scorer.item_factor(ItemId(i as u32)));
                }
                let quant = QuantMatrix::from_rows(k, (0..m.rows()).map(|r| m.row(r)));
                CatalogShard {
                    first: range.start,
                    items: GrowMatrix::from_owned(m),
                    quant,
                }
            })
            .collect();
        RecommendEngine {
            scorer,
            shards,
            backend,
            kernel: F32Kernel::select(),
            quant_pool: Arc::new(QuantPoolCounters::default()),
            scan_metrics: None,
        }
    }

    /// Build the successor engine for a model that extends `prev`'s
    /// catalog (same contract as [`Scorer::grown_from`]): the per-shard
    /// scan matrices and effective-factor tables are shared with `prev`
    /// and only rows for the appended items/nodes are computed —
    /// publish cost is `O(change)`, not `O(catalog)`.
    ///
    /// Appended item ids extend the id space past the last shard's
    /// range, so a live `AddItem` routes to the **last shard's tail**;
    /// every other shard is shared with `prev` by pointer. Once a
    /// shard's appended tail outgrows a quarter of its shared base it
    /// is compacted back into one contiguous segment, so a long-lived
    /// update stream cannot degrade the blocked scan.
    pub fn grown_from<P: Deref<Target = TfModel>>(
        prev: &RecommendEngine<P>,
        model: M,
        backend: Backend,
    ) -> RecommendEngine<M> {
        let prev_items = prev.model().num_items();
        let scorer = Scorer::grown_from(&prev.scorer, model);
        let mut shards = prev.shards.clone();
        debug_assert!(!shards.is_empty(), "partition always yields a shard");
        let tail = shards.last_mut().expect("at least one shard");
        for i in prev_items..scorer.model().num_items() {
            let row = scorer.item_factor(ItemId(i as u32));
            tail.items.push_row(row);
            // Re-quantizes only the touched tail chunk — every other
            // quant chunk stays shared with `prev` by pointer.
            tail.quant.push_row(row);
        }
        if tail.items.tail_rows() * COMPACT_TAIL_FRACTION > tail.items.base_rows() {
            tail.items.compact();
        }
        RecommendEngine {
            scorer,
            shards,
            backend,
            kernel: prev.kernel,
            quant_pool: prev.quant_pool.clone(),
            scan_metrics: prev.scan_metrics.clone(),
        }
    }

    /// Attach per-shard scan counters; every subsequent scan (and every
    /// successor engine via [`grown_from`](Self::grown_from)) records
    /// rows/blocks/busy-time into them. Counters registered for a
    /// different shard count silently ignore out-of-range shards.
    pub fn set_scan_metrics(&mut self, metrics: Arc<ScanMetrics>) {
        self.scan_metrics = Some(metrics);
    }

    /// The model being served.
    pub fn model(&self) -> &TfModel {
        self.scorer.model()
    }

    /// The underlying scorer (query building, category ranking).
    pub fn scorer(&self) -> &Scorer<M> {
        &self.scorer
    }

    /// The active backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The f32 scan kernel every scan dispatches through.
    pub fn scan_kernel(&self) -> F32Kernel {
        self.kernel
    }

    /// Override the scan kernel (tests, `--scan-kernel`). Results are
    /// bit-identical under every kernel; only throughput changes.
    pub fn set_scan_kernel(&mut self, kernel: F32Kernel) {
        self.kernel = kernel;
    }

    /// Outcome counters of every quantized first-pass pool this engine
    /// (and the engines it grew from) served.
    pub fn quant_pool_stats(&self) -> QuantPoolStats {
        QuantPoolStats {
            scans: self.quant_pool.scans.load(Ordering::Relaxed),
            sufficient: self.quant_pool.sufficient.load(Ordering::Relaxed),
            insufficient: self.quant_pool.insufficient.load(Ordering::Relaxed),
        }
    }

    /// Rows in the dense scan matrices (always `model().num_items()`;
    /// the live subsystem's consistency checks assert the two never
    /// diverge across an epoch swap).
    pub fn catalog_len(&self) -> usize {
        self.shards.iter().map(|s| s.items.rows()).sum()
    }

    /// Number of catalog scan shards this engine partitions the item
    /// matrix into (1 = unsharded).
    pub fn scan_shards(&self) -> usize {
        self.shards.len()
    }

    /// The `(start, end)` item-id range of every shard, in order. The
    /// ranges tile `0..catalog_len()` exactly once — asserted by the
    /// live subsystem's swap-consistency checks.
    pub fn shard_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.shards
            .iter()
            .map(|s| (s.first, s.first + s.items.rows()))
    }

    /// `(base, tail)` segmentation of the dense item matrices summed
    /// over shards — how many rows are shared with the ancestor engine
    /// vs appended since.
    pub fn catalog_segments(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(b, t), s| {
            (b + s.items.base_rows(), t + s.items.tail_rows())
        })
    }

    /// `(shared, copied)` int8 shadow-matrix chunks relative to
    /// `prev`, summed over shards: how many `Arc`-shared quantized
    /// chunks survived [`grown_from`](Self::grown_from) by pointer vs
    /// were re-quantized. The O(change) publish law for the quantized
    /// scan state — mirrors [`taxrec_factors::CowMatrix`] accounting.
    pub fn quant_chunk_sharing_with<N>(&self, prev: &RecommendEngine<N>) -> (u64, u64)
    where
        N: std::ops::Deref<Target = TfModel>,
    {
        self.shards
            .iter()
            .zip(&prev.shards)
            .fold((0, 0), |(s, c), (a, b)| {
                let (ds, dc) = a.quant.shared_chunks_with(&b.quant);
                (s + ds, c + dc)
            })
    }

    /// The int8 shadow of shard `si`'s dense item matrix (tests and
    /// consistency checks; the serving path reads it internally).
    ///
    /// # Panics
    /// If `si >= scan_shards()`.
    pub fn quant_shard(&self, si: usize) -> &taxrec_factors::QuantMatrix {
        &self.shards[si].quant
    }

    /// The dense effective factor row the exhaustive scan uses for
    /// `item`. Exposed so consistency checks can verify it against
    /// [`Scorer::item_factor`] on a live snapshot.
    ///
    /// # Panics
    /// If `item` is outside the catalog.
    pub fn dense_item_factor(&self, item: ItemId) -> &[f32] {
        let idx = item.index();
        // Shards are sorted by `first` and contiguous, so the owner is
        // the last shard starting at or before the id.
        let si = self.shards.partition_point(|s| s.first <= idx) - 1;
        self.shards[si].items.row(idx - self.shards[si].first)
    }

    /// Serve one request. Equivalent to a 1-element
    /// [`recommend_batch`](Self::recommend_batch).
    pub fn recommend(&self, req: &RecommendRequest<'_>) -> Vec<(ItemId, f32)> {
        self.recommend_with(req, &self.backend)
    }

    /// [`recommend`](Self::recommend) through an explicit backend,
    /// overriding the engine default for this request only.
    pub fn recommend_with(
        &self,
        req: &RecommendRequest<'_>,
        backend: &Backend,
    ) -> Vec<(ItemId, f32)> {
        let mut scratch = Scratch::new(self.model().k());
        let mut out = Vec::new();
        self.serve_into(req, backend, &mut scratch, &mut out);
        out
    }

    /// Serve a batch, parallelised over up to `threads` workers.
    ///
    /// Results come back in request order; each entry holds up to
    /// `req.k` `(item, score)` pairs, best first, with `req.exclude`
    /// filtered out. Identical to calling
    /// [`recommend`](Self::recommend) per request, only faster.
    pub fn recommend_batch(
        &self,
        requests: &[RecommendRequest<'_>],
        threads: usize,
    ) -> Vec<Vec<(ItemId, f32)>>
    where
        M: Sync,
    {
        self.recommend_batch_with(requests, threads, &self.backend)
    }

    /// [`recommend_batch`](Self::recommend_batch) through an explicit
    /// backend, overriding the engine default for this batch only.
    pub fn recommend_batch_with(
        &self,
        requests: &[RecommendRequest<'_>],
        threads: usize,
        backend: &Backend,
    ) -> Vec<Vec<(ItemId, f32)>>
    where
        M: Sync,
    {
        let costs: Vec<u64> = requests.iter().map(|r| self.cost(r, backend)).collect();
        let shards = batch::plan(&costs, threads.max(1).min(requests.len().max(1)));

        let mut results: Vec<Vec<(ItemId, f32)>> = Vec::with_capacity(requests.len());
        results.resize_with(requests.len(), Vec::new);

        if shards.len() <= 1 {
            // No parallelism worth spawning for.
            let mut scratch = Scratch::new(self.model().k());
            for (req, out) in requests.iter().zip(results.iter_mut()) {
                self.serve_into(req, backend, &mut scratch, out);
            }
            return results;
        }

        // One worker per shard; each gets a disjoint slice of the result
        // vector matching its request span.
        std::thread::scope(|scope| {
            let mut rest: &mut [Vec<(ItemId, f32)>] = &mut results;
            let mut consumed = 0usize;
            for Shard { start, end } in shards {
                let (mine, tail) = rest.split_at_mut(end - consumed);
                rest = tail;
                consumed = end;
                let span = &requests[start..end];
                scope.spawn(move || {
                    let mut scratch = Scratch::new(self.model().k());
                    for (req, out) in span.iter().zip(mine.iter_mut()) {
                        self.serve_into(req, backend, &mut scratch, out);
                    }
                });
            }
        });
        results
    }

    /// Estimated cost of one request, in arbitrary comparable units.
    fn cost(&self, req: &RecommendRequest<'_>, backend: &Backend) -> u64 {
        let scan = match backend {
            Backend::Exhaustive => self.model().num_items(),
            // The quantized first pass reads 4× less per row; the
            // planner only needs relative weights.
            Backend::Quantized(_) => (self.model().num_items() / 4).max(1),
            // A beam touches a config-dependent fraction of the catalog;
            // the planner only needs relative weights, so approximate
            // with the leaf-level keep fraction.
            Backend::Cascaded(cfg) => {
                let leaf_frac = cfg.keep_fractions.last().copied().unwrap_or(1.0);
                ((self.model().num_items() as f64 * leaf_frac.clamp(0.05, 1.0)) as usize).max(1)
            }
        };
        // Query building touches the conditioning history once per item
        // in the last B baskets.
        let markov: usize = req.history.iter().rev().take(8).map(|b| b.len()).sum();
        (scan + 4 * markov) as u64
    }

    /// Scatter-gather serving of one request: the per-shard blocked
    /// scans run in parallel on up to `threads` scoped workers (the
    /// same idiom as [`recommend_batch`](Self::recommend_batch), but
    /// across the *catalog* instead of across users), and the per-shard
    /// winners are merged deterministically by
    /// [`shards::merge_topk`]. Bit-for-bit identical to
    /// [`recommend`](Self::recommend) at any shard/thread count; with
    /// one shard or one thread it degenerates to the sequential path.
    ///
    /// The cascaded backend beams through the taxonomy rather than
    /// scanning the catalog, so it is served sequentially regardless;
    /// the quantized backend also takes the sequential path (its
    /// per-shard pools are cheap enough that scattering them has not
    /// paid for the thread fan-out) — results are identical either way.
    pub fn recommend_scatter(
        &self,
        req: &RecommendRequest<'_>,
        threads: usize,
    ) -> Vec<(ItemId, f32)>
    where
        M: Sync,
    {
        self.recommend_scatter_with(req, threads, &self.backend)
    }

    /// [`recommend_scatter`](Self::recommend_scatter) through an
    /// explicit backend, overriding the engine default for this request.
    pub fn recommend_scatter_with(
        &self,
        req: &RecommendRequest<'_>,
        threads: usize,
        backend: &Backend,
    ) -> Vec<(ItemId, f32)>
    where
        M: Sync,
    {
        let workers = threads.max(1).min(self.shards.len());
        if workers <= 1 || !matches!(backend, Backend::Exhaustive) {
            return self.recommend_with(req, backend);
        }
        debug_assert!(
            req.exclude.windows(2).all(|w| w[0] <= w[1]),
            "exclude list must be sorted"
        );
        let mut query = vec![0.0f32; self.model().k()];
        self.scorer.query_into(req.user, req.history, &mut query);
        let k = req.k.min(self.catalog_len());
        // Cost-balance shard groups by row count, one scoped worker per
        // group. `shards::pack` emits exactly `workers` non-empty
        // groups — a heavy tail shard (where live AddItems accumulate)
        // can skew one group, never collapse the parallelism.
        let costs: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.items.rows().max(1) as u64)
            .collect();
        let groups = shards::pack(&costs, workers);
        let mut partials: Vec<Vec<(ItemId, f32)>> = Vec::with_capacity(self.shards.len());
        partials.resize_with(self.shards.len(), Vec::new);
        let exclude = req.exclude;
        let kernel = self.kernel;
        std::thread::scope(|scope| {
            let query = &query;
            let mut rest: &mut [Vec<(ItemId, f32)>] = &mut partials;
            let mut consumed = 0usize;
            for (start, end) in groups {
                let (mine, tail) = rest.split_at_mut(end - consumed);
                rest = tail;
                consumed = end;
                let span = &self.shards[start..end];
                scope.spawn(move || {
                    let mut topk = TopK::new();
                    let mut block = vec![0.0f32; SCORE_BLOCK];
                    for (off, (shard, out)) in span.iter().zip(mine.iter_mut()).enumerate() {
                        let t0 = self.scan_metrics.as_ref().map(|_| Instant::now());
                        let (rows, blocks) =
                            scan_shard(shard, kernel, query, exclude, k, &mut topk, &mut block);
                        if let (Some(sm), Some(t0)) = (self.scan_metrics.as_ref(), t0) {
                            sm.record(start + off, rows, blocks, t0.elapsed());
                        }
                        topk.drain_sorted_into(out);
                    }
                });
            }
        });
        let mut out = Vec::new();
        shards::merge_topk(&mut partials, k, &mut out);
        out
    }

    /// [`recommend_with`](Self::recommend_with) recording one span per
    /// pipeline stage into `trace`: `query`, one `scan[i]` per catalog
    /// shard, `merge` (exhaustive backend) or `cascade_rescore`
    /// (cascaded backend). Identical results to the untraced path.
    pub fn recommend_traced(
        &self,
        req: &RecommendRequest<'_>,
        backend: &Backend,
        trace: &mut TraceBuilder,
    ) -> Vec<(ItemId, f32)> {
        let mut scratch = Scratch::new(self.model().k());
        let mut out = Vec::new();
        self.serve_traced_into(req, backend, &mut scratch, &mut out, Some(trace));
        out
    }

    fn serve_into(
        &self,
        req: &RecommendRequest<'_>,
        backend: &Backend,
        scratch: &mut Scratch,
        out: &mut Vec<(ItemId, f32)>,
    ) {
        self.serve_traced_into(req, backend, scratch, out, None);
    }

    fn serve_traced_into(
        &self,
        req: &RecommendRequest<'_>,
        backend: &Backend,
        scratch: &mut Scratch,
        out: &mut Vec<(ItemId, f32)>,
        mut trace: Option<&mut TraceBuilder>,
    ) {
        debug_assert!(
            req.exclude.windows(2).all(|w| w[0] <= w[1]),
            "exclude list must be sorted"
        );
        let t_query = trace.as_ref().map(|t| t.clock());
        self.scorer
            .query_into(req.user, req.history, &mut scratch.query);
        if let (Some(t), Some(start)) = (trace.as_mut(), t_query) {
            t.close("query", start);
        }
        match backend {
            Backend::Exhaustive => self.exhaustive_into(req, scratch, out, trace),
            Backend::Quantized(cfg) => self.quantized_into(req, cfg, scratch, out, trace),
            Backend::Cascaded(cfg) => {
                let t_cascade = trace.as_ref().map(|t| t.clock());
                let res = cascade(&self.scorer, &scratch.query, cfg);
                out.clear();
                out.extend(
                    res.items
                        .into_iter()
                        .filter(|(i, _)| req.exclude.binary_search(i).is_err())
                        .take(req.k),
                );
                if let (Some(t), Some(start)) = (trace.as_mut(), t_cascade) {
                    t.close("cascade_rescore", start);
                }
            }
        }
    }

    /// Sequential exhaustive serving: one blocked top-K scan per shard,
    /// then the deterministic scatter-gather merge. With one shard this
    /// is exactly the classic single-heap scan.
    fn exhaustive_into(
        &self,
        req: &RecommendRequest<'_>,
        scratch: &mut Scratch,
        out: &mut Vec<(ItemId, f32)>,
        mut trace: Option<&mut TraceBuilder>,
    ) {
        // Clamp to the catalog: more than n items can never be returned,
        // and an attacker-supplied huge `k` must not drive the heap
        // reservation (the HTTP layer passes `top=` through unchecked).
        let k = req.k.min(self.catalog_len());
        scratch.partials.resize_with(self.shards.len(), Vec::new);
        for (si, shard) in self.shards.iter().enumerate() {
            let t_metric = self.scan_metrics.as_ref().map(|_| Instant::now());
            let t_span = trace.as_ref().map(|t| t.clock());
            let (rows, blocks) = scan_shard(
                shard,
                self.kernel,
                &scratch.query,
                req.exclude,
                k,
                &mut scratch.topk,
                &mut scratch.block,
            );
            if let (Some(sm), Some(t0)) = (self.scan_metrics.as_ref(), t_metric) {
                sm.record(si, rows, blocks, t0.elapsed());
            }
            if let (Some(t), Some(start)) = (trace.as_mut(), t_span) {
                t.close(&format!("scan[{si}]"), start);
            }
            scratch.topk.drain_sorted_into(&mut scratch.partials[si]);
        }
        let t_merge = trace.as_ref().map(|t| t.clock());
        shards::merge_topk(&mut scratch.partials, k, out);
        if let (Some(t), Some(start)) = (trace.as_mut(), t_merge) {
            t.close("merge", start);
        }
    }

    /// Quantized serving: per-shard int8 branch-and-bound scan with
    /// exact f32 rescoring of every row still competing within the
    /// rigorous error bound — so the served ranking is **always**
    /// exactly the exhaustive one, and the scatter-gather merge and
    /// sharded ≡ unsharded law apply unchanged.
    fn quantized_into(
        &self,
        req: &RecommendRequest<'_>,
        cfg: &QuantizedConfig,
        scratch: &mut Scratch,
        out: &mut Vec<(ItemId, f32)>,
        mut trace: Option<&mut TraceBuilder>,
    ) {
        let k = req.k.min(self.catalog_len());
        let qq = QuantQuery::from_query(&scratch.query);
        let pool_k = cfg.pool_size(k);
        scratch.partials.resize_with(self.shards.len(), Vec::new);
        for (si, shard) in self.shards.iter().enumerate() {
            let t_metric = self.scan_metrics.as_ref().map(|_| Instant::now());
            let t_span = trace.as_ref().map(|t| t.clock());
            let (rows, sufficient) = scan_shard_quantized(
                shard,
                self.kernel,
                &qq,
                &scratch.query,
                req.exclude,
                k,
                pool_k,
                &mut scratch.qdots,
                &mut scratch.qapprox,
                &mut scratch.topk,
            );
            self.quant_pool.scans.fetch_add(1, Ordering::Relaxed);
            if sufficient {
                self.quant_pool.sufficient.fetch_add(1, Ordering::Relaxed);
            } else {
                self.quant_pool.insufficient.fetch_add(1, Ordering::Relaxed);
            }
            if let (Some(sm), Some(t0)) = (self.scan_metrics.as_ref(), t_metric) {
                sm.record(si, rows, shard.quant.num_chunks() as u64, t0.elapsed());
                sm.record_quant(sufficient);
            }
            if let (Some(t), Some(start)) = (trace.as_mut(), t_span) {
                t.close(&format!("qscan[{si}]"), start);
            }
            scratch.topk.drain_sorted_into(&mut scratch.partials[si]);
        }
        let t_merge = trace.as_ref().map(|t| t.clock());
        shards::merge_topk(&mut scratch.partials, k, out);
        if let (Some(t), Some(start)) = (trace.as_mut(), t_merge) {
            t.close("merge", start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use taxrec_taxonomy::{Taxonomy, TaxonomyGenerator, TaxonomyShape};

    fn tax() -> Arc<Taxonomy> {
        Arc::new(
            TaxonomyGenerator::new(TaxonomyShape {
                level_sizes: vec![4, 8, 20],
                num_items: 300,
                item_skew: 0.5,
            })
            .generate(&mut StdRng::seed_from_u64(11))
            .taxonomy,
        )
    }

    fn model(b: usize) -> TfModel {
        // Gaussian node init: untrained factors must still give
        // non-degenerate, distinct scores.
        let cfg = ModelConfig::tf(4, b)
            .with_factors(8)
            .with_node_init_sigma(0.1);
        TfModel::init(cfg, tax(), 64, 17)
    }

    #[test]
    fn single_request_matches_scorer_top_k() {
        let m = model(0);
        let engine = RecommendEngine::new(&m);
        for user in [0usize, 7, 63] {
            let got = engine.recommend(&RecommendRequest::simple(user, 10));
            let q = engine.scorer().query(user, &[]);
            let expect = engine.scorer().top_k_items(&q, 10, &[]);
            assert_eq!(got, expect, "user {user}");
        }
    }

    #[test]
    fn batch_matches_per_user_calls_exhaustive() {
        let m = model(1);
        let engine = RecommendEngine::new(&m);
        let histories: Vec<Vec<Transaction>> = (0..64)
            .map(|u| {
                vec![
                    vec![ItemId((u % 300) as u32)],
                    vec![ItemId(((u * 7) % 300) as u32)],
                ]
            })
            .collect();
        let requests: Vec<RecommendRequest> = (0..64)
            .map(|u| RecommendRequest {
                user: u,
                history: &histories[u],
                k: 10,
                exclude: &[],
            })
            .collect();
        let batched = engine.recommend_batch(&requests, 8);
        assert_eq!(batched.len(), 64);
        for (req, got) in requests.iter().zip(&batched) {
            assert_eq!(got, &engine.recommend(req), "user {}", req.user);
            assert_eq!(got.len(), 10);
        }
    }

    #[test]
    fn batch_matches_per_user_calls_cascaded() {
        let m = model(0);
        let depth = m.taxonomy().depth();
        let engine = RecommendEngine::with_backend(
            &m,
            Backend::Cascaded(CascadeConfig::uniform(depth, 0.4)),
        );
        let requests: Vec<RecommendRequest> =
            (0..64).map(|u| RecommendRequest::simple(u, 10)).collect();
        let batched = engine.recommend_batch(&requests, 5);
        for (req, got) in requests.iter().zip(&batched) {
            assert_eq!(got, &engine.recommend(req), "user {}", req.user);
        }
    }

    #[test]
    fn cascaded_full_beam_matches_exhaustive() {
        let m = model(0);
        let depth = m.taxonomy().depth();
        let exact = RecommendEngine::new(&m);
        let full = RecommendEngine::with_backend(
            &m,
            Backend::Cascaded(CascadeConfig::uniform(depth, 1.0)),
        );
        for user in 0..16 {
            let req = RecommendRequest::simple(user, 8);
            assert_eq!(exact.recommend(&req), full.recommend(&req), "user {user}");
        }
    }

    #[test]
    fn exclusions_are_respected_in_both_backends() {
        let m = model(0);
        let depth = m.taxonomy().depth();
        for backend in [
            Backend::Exhaustive,
            Backend::Cascaded(CascadeConfig::uniform(depth, 1.0)),
        ] {
            let engine = RecommendEngine::with_backend(&m, backend.clone());
            let top = engine.recommend(&RecommendRequest::simple(3, 5));
            let mut exclude: Vec<ItemId> = top.iter().take(2).map(|r| r.0).collect();
            exclude.sort_unstable();
            let req = RecommendRequest {
                user: 3,
                history: &[],
                k: 5,
                exclude: &exclude,
            };
            let filtered = engine.recommend(&req);
            assert!(
                filtered.iter().all(|(i, _)| !exclude.contains(i)),
                "{backend:?} leaked an excluded item"
            );
            assert_eq!(filtered[0].0, top[2].0, "{backend:?} order changed");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let m = model(1);
        let engine = RecommendEngine::new(&m);
        let requests: Vec<RecommendRequest> =
            (0..31).map(|u| RecommendRequest::simple(u, 7)).collect();
        let base = engine.recommend_batch(&requests, 1);
        for threads in [2usize, 3, 8, 64] {
            assert_eq!(
                engine.recommend_batch(&requests, threads),
                base,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn k_larger_than_catalog_and_empty_batch() {
        let m = model(0);
        let engine = RecommendEngine::new(&m);
        // usize::MAX must not drive the heap reservation (attacker-
        // controlled `top=` reaches this path through the HTTP layer).
        let all = engine.recommend(&RecommendRequest::simple(0, usize::MAX));
        assert_eq!(all.len(), m.num_items());
        for w in all.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(engine.recommend_batch(&[], 4).is_empty());
    }

    #[test]
    fn sharded_engine_matches_unsharded_bit_for_bit() {
        let m = model(1);
        let hist = vec![vec![ItemId(4), ItemId(9)], vec![ItemId(2)]];
        let exclude = [ItemId(3), ItemId(17), ItemId(120)];
        let oracle = RecommendEngine::new(&m);
        for s in [2usize, 3, 5, 8] {
            let sharded = RecommendEngine::with_backend_sharded(&m, Backend::Exhaustive, s);
            assert_eq!(sharded.scan_shards(), s);
            assert_eq!(sharded.catalog_len(), m.num_items());
            for (user, k) in [(0usize, 1usize), (5, 10), (30, 400)] {
                let req = RecommendRequest {
                    user,
                    history: &hist,
                    k,
                    exclude: &exclude,
                };
                let want = oracle.recommend(&req);
                let got = sharded.recommend(&req);
                assert_eq!(got.len(), want.len(), "S={s} user={user} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "S={s} user={user} k={k}: id order");
                    assert_eq!(
                        g.1.to_bits(),
                        w.1.to_bits(),
                        "S={s} user={user} k={k}: score bits"
                    );
                }
                // Scatter-gather across shard workers is the same again.
                for threads in [2usize, 3, 8] {
                    assert_eq!(
                        sharded.recommend_scatter(&req, threads),
                        want,
                        "S={s} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_ranges_tile_the_catalog() {
        let m = model(0);
        for s in [1usize, 2, 4, 7] {
            let engine = RecommendEngine::with_backend_sharded(&m, Backend::Exhaustive, s);
            let mut next = 0usize;
            for (start, end) in engine.shard_ranges() {
                assert_eq!(start, next, "S={s}: gap or overlap");
                assert!(end > start, "S={s}: empty shard");
                next = end;
            }
            assert_eq!(next, m.num_items(), "S={s}: items dropped");
            // Every item's dense row resolves through the right shard.
            for i in [0usize, 1, 150, m.num_items() - 1] {
                let item = ItemId(i as u32);
                assert_eq!(
                    engine.dense_item_factor(item),
                    engine.scorer().item_factor(item),
                    "S={s} item {i}"
                );
            }
        }
    }

    #[test]
    fn scatter_on_cascaded_backend_falls_back_to_sequential() {
        let m = model(0);
        let depth = m.taxonomy().depth();
        let engine = RecommendEngine::with_backend_sharded(
            &m,
            Backend::Cascaded(CascadeConfig::uniform(depth, 0.4)),
            4,
        );
        let req = RecommendRequest::simple(3, 8);
        assert_eq!(engine.recommend_scatter(&req, 4), engine.recommend(&req));
    }

    #[test]
    fn history_changes_markov_results() {
        let m = model(2);
        let engine = RecommendEngine::new(&m);
        let no_hist = engine.recommend(&RecommendRequest::simple(5, 10));
        let hist = vec![vec![ItemId(1), ItemId(2)], vec![ItemId(3)]];
        let with_hist = engine.recommend(&RecommendRequest {
            user: 5,
            history: &hist,
            k: 10,
            exclude: &[],
        });
        assert_ne!(no_hist, with_hist, "history must shift the ranking");
    }
}
