//! Reusable heap-based top-K selection and the blocked scoring kernel.
//!
//! [`TopK`] is a bounded min-heap that an engine worker resets and
//! refills once per request — no per-request allocation after the first
//! use. Selection implements the total order **(score descending, item
//! id ascending)** exactly, for *any* offer order: a full heap evicts
//! its worst entry (minimum score; largest item id among equal scores)
//! whenever a strictly better candidate arrives — better score, or an
//! equal score with a smaller id. That total order is what makes the
//! per-shard scatter-gather merge ([`crate::recommend::shards`])
//! bit-for-bit identical to a single catalog-wide heap even when tied
//! scores straddle a shard boundary; [`Scorer::top_k_items`] follows
//! the same rule.
//!
//! [`score_block_into`] is the inner loop of exhaustive inference: one
//! query against a contiguous block of item-factor rows, written to a
//! dense score buffer. Keeping the dot products in a branch-free loop
//! over adjacent rows (instead of interleaving them with heap pushes)
//! is what lets the compiler vectorise the scan; the heap then consumes
//! the block with a cheap `> threshold` pre-filter.
//!
//! [`Scorer::top_k_items`]: crate::scoring::Scorer::top_k_items

use std::cmp::Ordering;
use taxrec_factors::ops;
use taxrec_taxonomy::ItemId;

/// THE ranking order of this crate: score descending, item id ascending
/// on equal scores (`Ordering::Less` = ranks earlier). Every selection
/// and merge path — [`TopK`], [`Scorer::top_k_items`], the scatter-
/// gather merge in [`crate::recommend::shards`] — must use this one
/// function (or [`ranks_before`]); the sharded ≡ unsharded law holds
/// only while they agree bit for bit.
#[inline]
pub fn rank_cmp(a: &(ItemId, f32), b: &(ItemId, f32)) -> Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.0.cmp(&b.0))
}

/// `true` iff candidate `a` outranks `b` under [`rank_cmp`] — the
/// admission/eviction predicate of every bounded selection heap.
#[inline]
pub fn ranks_before(a: (ItemId, f32), b: (ItemId, f32)) -> bool {
    a.1 > b.1 || (a.1 == b.1 && a.0 < b.0)
}

/// Min-heap entry ordered so the *worst* kept candidate is at the root.
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: f32,
    item: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.item == other.item
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on score: the backing heap is a max-heap, so
        // "greater" here means "worse candidate" — lower score, and
        // among equal scores the *larger* item id (the entry the
        // (score desc, id asc) total order ranks last).
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// A bounded top-K accumulator, reusable across requests.
///
/// The backing storage is kept between [`reset`](TopK::reset) calls, so
/// a worker thread allocates once and serves any number of requests.
#[derive(Debug, Default)]
pub struct TopK {
    k: usize,
    heap: Vec<Entry>,
}

impl TopK {
    /// A fresh accumulator (no capacity reserved yet).
    pub fn new() -> TopK {
        TopK::default()
    }

    /// Clear and re-arm for a request wanting `k` items.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
        // `reserve` is relative to the (now zero) length, so this
        // guarantees capacity ≥ k + 1 — no reallocation during offers.
        self.heap.reserve(k + 1);
    }

    /// Candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no candidate has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The score a candidate must beat to enter a full heap, or `-inf`
    /// while the heap still has room. A candidate *equal* to the
    /// threshold can still enter on the id tie-break (see
    /// [`offer`](TopK::offer)) — but never when offered in ascending
    /// item order, which is what lets scan loops pre-filter blocks with
    /// a plain `> threshold` test.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.k == 0 {
            return f32::INFINITY;
        }
        if self.heap.len() < self.k {
            f32::NEG_INFINITY
        } else {
            self.heap[0].score
        }
    }

    /// Offer one candidate: a full heap admits it iff it beats the
    /// current worst entry under the (score desc, id asc) total order.
    #[inline]
    pub fn offer(&mut self, item: ItemId, score: f32) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.push(Entry {
                score,
                item: item.0,
            });
        } else {
            let root = self.heap[0];
            if ranks_before((item, score), (ItemId(root.item), root.score)) {
                self.pop_root();
                self.push(Entry {
                    score,
                    item: item.0,
                });
            }
        }
    }

    /// Drain into `out`, best first under [`rank_cmp`] (descending
    /// score; ascending item id among exactly-equal scores).
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(ItemId, f32)>) {
        out.clear();
        out.extend(self.heap.iter().map(|e| (ItemId(e.item), e.score)));
        self.heap.clear();
        out.sort_by(rank_cmp);
    }

    // Plain sift-up/sift-down on the Vec; `BinaryHeap` itself would force
    // a fresh allocation per request (`into_iter` consumes it).
    fn push(&mut self, e: Entry) {
        self.heap.push(e);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] <= self.heap[parent] {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn pop_root(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut biggest = i;
            if l < n && self.heap[l] > self.heap[biggest] {
                biggest = l;
            }
            if r < n && self.heap[r] > self.heap[biggest] {
                biggest = r;
            }
            if biggest == i {
                break;
            }
            self.heap.swap(i, biggest);
            i = biggest;
        }
    }
}

/// Number of items scored per block by the exhaustive scan.
///
/// 256 rows × K=16 f32 ≈ 16 KiB of factors per block — comfortably
/// inside L1/L2 alongside the query and score buffer.
pub const SCORE_BLOCK: usize = 256;

/// Score a contiguous block of item rows against one query.
///
/// `rows` is the row-major slice covering items `[first, first + n)` of
/// the engine's item-factor matrix; `out[i]` receives the score of item
/// `first + i`.
///
/// # Panics
/// If `rows.len() != out.len() * query.len()` (debug builds).
#[inline]
pub fn score_block_into(query: &[f32], rows: &[f32], out: &mut [f32]) {
    let k = query.len();
    debug_assert_eq!(rows.len(), out.len() * k);
    for (o, row) in out.iter_mut().zip(rows.chunks_exact(k)) {
        *o = ops::dot(query, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(scores: &[f32], k: usize) -> Vec<(ItemId, f32)> {
        let mut t = TopK::new();
        t.reset(k);
        for (i, &s) in scores.iter().enumerate() {
            t.offer(ItemId(i as u32), s);
        }
        let mut out = Vec::new();
        t.drain_sorted_into(&mut out);
        out
    }

    #[test]
    fn matches_full_sort() {
        let scores = [0.3f32, -1.0, 2.5, 2.5, 0.0, 7.0, -3.2, 0.3];
        let got = select(&scores, 4);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], (ItemId(5), 7.0));
        // Equal scores come out in ascending item order.
        assert_eq!(got[1], (ItemId(2), 2.5));
        assert_eq!(got[2], (ItemId(3), 2.5));
        assert_eq!(got[3], (ItemId(0), 0.3));
    }

    #[test]
    fn k_larger_than_candidates() {
        let got = select(&[1.0, 2.0], 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, ItemId(1));
    }

    #[test]
    fn k_zero_keeps_nothing() {
        let got = select(&[1.0, 2.0], 0);
        assert!(got.is_empty());
    }

    #[test]
    fn reuse_does_not_leak_state() {
        let mut t = TopK::new();
        t.reset(2);
        t.offer(ItemId(0), 9.0);
        t.offer(ItemId(1), 8.0);
        let mut out = Vec::new();
        t.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 2);

        t.reset(3);
        t.offer(ItemId(5), 1.0);
        t.drain_sorted_into(&mut out);
        assert_eq!(out, vec![(ItemId(5), 1.0)]);
    }

    #[test]
    fn threshold_tracks_worst_kept() {
        let mut t = TopK::new();
        t.reset(2);
        assert_eq!(t.threshold(), f32::NEG_INFINITY);
        t.offer(ItemId(0), 3.0);
        t.offer(ItemId(1), 5.0);
        assert_eq!(t.threshold(), 3.0);
        t.offer(ItemId(2), 4.0); // evicts 3.0
        assert_eq!(t.threshold(), 4.0);
        t.offer(ItemId(3), 1.0); // below threshold: ignored
        assert_eq!(t.threshold(), 4.0);
    }

    #[test]
    fn boundary_ties_keep_lowest_ids_in_any_offer_order() {
        // Four candidates tie at the boundary score; the kept pair must
        // be the two lowest ids under the (score desc, id asc) total
        // order, no matter how arrivals interleave with the eviction.
        for order in [
            vec![(0u32, 1.0f32), (5, 1.0), (2, 1.0), (9, 1.0), (3, 7.0)],
            vec![(9, 1.0), (5, 1.0), (3, 7.0), (2, 1.0), (0, 1.0)],
            vec![(3, 7.0), (9, 1.0), (2, 1.0), (0, 1.0), (5, 1.0)],
        ] {
            let mut t = TopK::new();
            t.reset(3);
            for (i, s) in &order {
                t.offer(ItemId(*i), *s);
            }
            let mut out = Vec::new();
            t.drain_sorted_into(&mut out);
            assert_eq!(
                out,
                vec![(ItemId(3), 7.0), (ItemId(0), 1.0), (ItemId(2), 1.0)],
                "offer order {order:?}"
            );
        }
    }

    #[test]
    fn block_kernel_matches_scalar_dots() {
        // Widths straddling the lane-split boundary (DOT_LANES = 8):
        // sub-lane, exact multiples, and ragged tails — and block row
        // counts that are not multiples of SCORE_BLOCK either.
        for k in [1usize, 3, 7, 8, 9, 16, 19, 32, 33] {
            for n_rows in [1usize, 2, 5, 8, 13] {
                let query: Vec<f32> = (0..k).map(|i| (i as f32 * 0.37 - 1.1).sin()).collect();
                let rows: Vec<f32> = (0..n_rows * k)
                    .map(|i| (i as f32 * 0.11 - 2.3).cos() * 1.7)
                    .collect();
                let mut out = vec![0.0f32; n_rows];
                score_block_into(&query, &rows, &mut out);
                for i in 0..n_rows {
                    let expect = ops::dot(&query, &rows[i * k..(i + 1) * k]);
                    assert_eq!(
                        out[i].to_bits(),
                        expect.to_bits(),
                        "k={k} n_rows={n_rows} row={i}"
                    );
                }
            }
        }
    }
}
