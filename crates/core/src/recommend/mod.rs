//! Batched multi-user top-K recommendation serving.
//!
//! The paper's inference sections (Sec. 5) rank items for *one* user at
//! a time; a serving system faces batches of users per tick. This
//! module is the serving data path every scaling feature builds on:
//!
//! ```text
//!                    ┌───────────────────────────────┐
//!  TfModel ────────► │ RecommendEngine               │
//!   (trained)        │  · Scorer (effective factors) │
//!                    │  · dense item-factor matrix   │
//!                    └──────────────┬────────────────┘
//!  requests ─► batch::plan ─► shard │ shard │ shard    (worker threads)
//!                                   ▼       ▼
//!                        per-worker Scratch: query buf,
//!                        block buf, reusable TopK heap
//!                                   │
//!          Backend::Exhaustive ─ blocked dot-product scan ─► TopK
//!          Backend::Cascaded  ─ taxonomy beam (Sec. 5.1)  ─► truncate
//! ```
//!
//! Three properties the tests pin down:
//!
//! * **batch ≡ per-user** — [`RecommendEngine::recommend_batch`]
//!   returns exactly what per-request [`RecommendEngine::recommend`]
//!   calls would, for both backends, at any thread count;
//! * **heap ≡ full sort** — the blocked heap selection equals sorting
//!   all scores and truncating (property-tested in
//!   `tests/proptest_recommend.rs`);
//! * **cascade(1.0) ≡ exhaustive** — a full-beam cascaded backend
//!   reproduces the exhaustive ranking.
//!
//! Cross-user parallelism uses `std::thread::scope` shards (the same
//! idiom as [`crate::eval`]) rather than a work-stealing pool: requests
//! are planned into contiguous, cost-balanced shards up front by
//! [`batch::plan`], so stealing would only add queue traffic. The
//! dependency-free choice also matches this workspace's offline build
//! constraints (see `vendor/README.md`).
//!
//! Orthogonally to user batching, the **catalog** itself is partitioned
//! into contiguous, taxonomy-subtree-aligned scan shards
//! ([`shards::CatalogPartition`]; opt in via
//! [`RecommendEngine::with_backend_sharded`]). Every request is served
//! as per-shard blocked top-K scans — sequentially inside a batch
//! worker, or scattered across scoped threads by
//! [`RecommendEngine::recommend_scatter`] — whose winners are folded by
//! a deterministic merge ([`shards::merge_topk`], tie-break: score
//! descending then item id ascending). A fourth pinned property joins
//! the three above:
//!
//! * **sharded ≡ unsharded** — for any shard count, backend, exclusion
//!   set and `k`, the served scores, ids, and order are bit-for-bit
//!   those of the single-shard engine (`tests/proptest_shards.rs`,
//!   `tests/differential_shards.rs`).
//!
//! The inner dot products dispatch through a runtime-selected
//! [`F32Kernel`] (portable scalar / AVX2, selected once at engine
//! construction, forceable via [`SCAN_KERNEL_ENV`]), and
//! [`Backend::Quantized`] adds an int8 first-pass scan whose candidate
//! pool is exactly rescored in f32 with a per-shard sufficiency proof
//! (exhaustive fallback otherwise). Both are *bit-invariant* by
//! construction — the SIMD kernels reproduce the scalar lane-split
//! summation exactly, and the quantized backend always serves the
//! exhaustive ranking — so a fifth law joins the four above:
//!
//! * **kernel ≡ kernel** — forced scalar, forced SIMD, and the
//!   quantized backend serve bit-identical scores, ids, and order
//!   (`tests/differential_kernels.rs`).

pub mod batch;
mod engine;
mod kernel;
pub mod shards;
mod topk;

pub use engine::{Backend, QuantPoolStats, QuantizedConfig, RecommendEngine, RecommendRequest};
pub use kernel::{F32Kernel, QuantQuery, SCAN_KERNEL_ENV};
pub use topk::{rank_cmp, ranks_before, score_block_into, TopK, SCORE_BLOCK};
