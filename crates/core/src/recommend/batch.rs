//! Batch planning: split a multi-user request batch into per-worker
//! shards with balanced estimated cost.
//!
//! Requests are not uniform — exhaustive inference costs one catalog
//! scan regardless of the user, while the query build scales with the
//! conditioning history and cascaded inference scales with the beam.
//! The planner assigns each request an estimated cost and cuts the
//! batch into `workers` *contiguous* spans of near-equal total cost
//! (contiguous so results keep the request order and every shard is one
//! cache-friendly slice). Cutting is greedy against the ideal per-shard
//! cost; for uniform costs it degenerates to even chunking.

/// One contiguous span of the request batch, assigned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First request index (inclusive).
    pub start: usize,
    /// Past-the-end request index.
    pub end: usize,
}

impl Shard {
    /// Number of requests in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff the shard covers no requests.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split `costs` (one estimate per request, in request order) into at
/// most `workers` contiguous shards of near-equal total cost.
///
/// Every request lands in exactly one shard; empty shards are never
/// emitted, so the result may hold fewer than `workers` entries (e.g.
/// for tiny batches).
pub fn plan(costs: &[u64], workers: usize) -> Vec<Shard> {
    let workers = workers.max(1);
    if costs.is_empty() {
        return Vec::new();
    }
    let total: u64 = costs.iter().sum();

    // Close each shard once it reaches its target: the cost still
    // unassigned divided by the shards still available. Recomputing the
    // target after every close absorbs skew — one oversized request
    // inflates only its own shard, and the rest re-balance.
    let mut shards = Vec::with_capacity(workers.min(costs.len()));
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut closed = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        let is_last_shard = shards.len() + 1 == workers;
        let target = ((total - closed) / (workers - shards.len()) as u64).max(1);
        if !is_last_shard && acc >= target {
            shards.push(Shard { start, end: i + 1 });
            start = i + 1;
            closed += acc;
            acc = 0;
        }
    }
    if start < costs.len() {
        shards.push(Shard {
            start,
            end: costs.len(),
        });
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(shards: &[Shard], n: usize) {
        let mut next = 0;
        for s in shards {
            assert_eq!(s.start, next, "gap or overlap at {next}");
            assert!(s.end > s.start, "empty shard");
            next = s.end;
        }
        assert_eq!(next, n, "requests dropped");
    }

    #[test]
    fn uniform_costs_chunk_evenly() {
        let costs = vec![10u64; 16];
        let shards = plan(&costs, 4);
        covers(&shards, 16);
        assert_eq!(shards.len(), 4);
        for s in &shards {
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn skewed_costs_balance() {
        // One huge request followed by many small ones: the huge one
        // should get (nearly) its own shard.
        let mut costs = vec![1000u64];
        costs.extend(std::iter::repeat_n(10, 30));
        let shards = plan(&costs, 4);
        covers(&shards, 31);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].len(), 1, "huge request should close shard 0");
        // The 30 small requests re-balance over the remaining 3 shards.
        for s in &shards[1..] {
            assert!(s.len() >= 8 && s.len() <= 12, "unbalanced shard {s:?}");
        }
    }

    #[test]
    fn more_workers_than_requests() {
        let shards = plan(&[5, 5], 8);
        covers(&shards, 2);
        assert!(shards.len() <= 2);
    }

    #[test]
    fn single_worker_takes_all() {
        let shards = plan(&[1, 2, 3], 1);
        covers(&shards, 3);
        assert_eq!(shards, vec![Shard { start: 0, end: 3 }]);
    }

    #[test]
    fn empty_batch() {
        assert!(plan(&[], 4).is_empty());
    }

    #[test]
    fn zero_workers_clamped() {
        let shards = plan(&[1, 1], 0);
        covers(&shards, 2);
    }
}
