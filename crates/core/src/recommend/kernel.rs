//! Runtime-dispatched scan kernels: explicit SIMD f32 dot products and
//! the exact int8 kernels behind the quantized first-pass scan.
//!
//! ## Bit-invariant dispatch
//!
//! Every f32 kernel here reproduces [`ops::dot`]'s lane-split
//! summation **bit for bit**: [`ops::DOT_LANES`] independent
//! accumulators walked in stride, the tail folded into lanes
//! `0..tail_len`, and [`ops::reduce_lanes`]' fixed pairwise tree. The
//! AVX2 variant vertically accumulates one 8-lane vector with
//! `mul + add` (never FMA — fusing changes the rounding) in the same
//! per-lane order, so forcing the kernel with
//! [`TAXREC_SCAN_KERNEL`](F32Kernel::select) can never change a served
//! score, id, or tie-break. The int8 kernels are exact integer
//! arithmetic, so they are dispatch-invariant trivially.
//!
//! Selection happens **once at engine construction**
//! ([`F32Kernel::select`]): the `TAXREC_SCAN_KERNEL` environment
//! variable (`scalar` | `simd`) wins, otherwise runtime CPU feature
//! detection picks the widest available kernel. Tests force both sides
//! through the env var or
//! [`RecommendEngine::set_scan_kernel`](super::RecommendEngine::set_scan_kernel).

use super::topk::score_block_into;
use taxrec_factors::ops;

/// Environment variable that forces the f32 scan kernel: `scalar`
/// pins the portable loop, `simd` (or `avx2`) pins the widest SIMD
/// kernel the CPU supports. Unknown values fall back to detection.
pub const SCAN_KERNEL_ENV: &str = "TAXREC_SCAN_KERNEL";

/// The f32 dot-product kernel an engine scans with (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F32Kernel {
    /// Portable lane-split scalar loop ([`ops::dot`]); always available.
    Scalar,
    /// 8-lane AVX2 vertical accumulation; constructed only after
    /// runtime detection succeeds.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl F32Kernel {
    /// The widest kernel this CPU supports.
    pub fn detect() -> F32Kernel {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return F32Kernel::Avx2;
        }
        F32Kernel::Scalar
    }

    /// `true` iff a SIMD kernel (not just the scalar fallback) is
    /// available on this CPU.
    pub fn simd_available() -> bool {
        F32Kernel::detect() != F32Kernel::Scalar
    }

    /// Parse a kernel name: `scalar`, or `simd`/`avx2` for the widest
    /// detected SIMD kernel (falling back to scalar on CPUs without
    /// one, so a forced-SIMD test matrix still runs everywhere).
    pub fn parse(name: &str) -> Result<F32Kernel, String> {
        match name {
            "scalar" => Ok(F32Kernel::Scalar),
            "simd" | "avx2" => Ok(F32Kernel::detect()),
            other => Err(format!(
                "unknown scan kernel '{other}' (expected 'scalar' or 'simd')"
            )),
        }
    }

    /// The kernel an engine construction should use: the
    /// [`SCAN_KERNEL_ENV`] override if set and valid, otherwise
    /// [`detect`](F32Kernel::detect).
    pub fn select() -> F32Kernel {
        match std::env::var(SCAN_KERNEL_ENV) {
            Ok(v) => F32Kernel::parse(&v).unwrap_or_else(|_| F32Kernel::detect()),
            Err(_) => F32Kernel::detect(),
        }
    }

    /// Stable name for stats, metrics, and reports.
    pub fn name(&self) -> &'static str {
        match self {
            F32Kernel::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            F32Kernel::Avx2 => "avx2",
        }
    }

    /// Dot product through this kernel — bit-identical to
    /// [`ops::dot`] by construction.
    #[inline]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            F32Kernel::Scalar => ops::dot(a, b),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 variant is only constructed after
            // `is_x86_feature_detected!("avx2")` succeeded.
            F32Kernel::Avx2 => unsafe { avx2::dot_f32(a, b) },
        }
    }

    /// Score a contiguous block of rows against one query — the
    /// kernel-dispatched form of [`score_block_into`].
    #[inline]
    pub fn score_block(&self, query: &[f32], rows: &[f32], out: &mut [f32]) {
        match self {
            F32Kernel::Scalar => score_block_into(query, rows, out),
            #[cfg(target_arch = "x86_64")]
            F32Kernel::Avx2 => {
                let k = query.len();
                debug_assert_eq!(rows.len(), out.len() * k);
                for (o, row) in out.iter_mut().zip(rows.chunks_exact(k)) {
                    // SAFETY: as in `dot` — variant implies detection.
                    *o = unsafe { avx2::dot_f32(query, row) };
                }
            }
        }
    }

    /// Exact `i8 × i8 → i32` dot product (the quantized first pass).
    /// Integer arithmetic: every kernel returns the identical value.
    #[inline]
    pub fn dot_i8(&self, a: &[i8], b: &[i8]) -> i32 {
        match self {
            F32Kernel::Scalar => dot_i8_scalar(a, b),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as in `dot` — variant implies detection.
            F32Kernel::Avx2 => unsafe { avx2::dot_i8(a, b) },
        }
    }

    /// Integer dots of one query against every row of a row-major
    /// `i8` block (`rows.len() / q.len()` rows, e.g. one
    /// [`taxrec_factors::QuantChunk`]'s flat codes). Keeping the row
    /// loop inside the SIMD-enabled function is what makes the int8
    /// first pass fast: per-row calls into a `target_feature` function
    /// cannot inline into a generic caller.
    #[inline]
    pub fn dot_i8_block(&self, q: &[i8], rows: &[i8], out: &mut [i32]) {
        debug_assert_eq!(rows.len(), out.len() * q.len());
        if q.is_empty() {
            out.fill(0);
            return;
        }
        match self {
            F32Kernel::Scalar => {
                for (o, row) in out.iter_mut().zip(rows.chunks_exact(q.len())) {
                    *o = dot_i8_scalar(q, row);
                }
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as in `dot` — variant implies detection.
            F32Kernel::Avx2 => unsafe { avx2::dot_i8_block(q, rows, out) },
        }
    }
}

fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// A query quantized for the int8 first pass: symmetric per-query
/// scale (`u_j ≈ uscale · c_j`, codes in `[-127, 127]`), plus the
/// precomputed sums the affine combine and the error bound need.
///
/// With item codes `r_j` (zero-point −128, row params `min`/`scale` —
/// see [`taxrec_factors::QuantMatrix`]) the approximate score is
///
/// ```text
/// ŝ = uscale · (min · Σc  +  scale · (Σ c_j r_j + 128 · Σc))
/// ```
///
/// where the inner integer dot `Σ c_j r_j` is exact, so ŝ is a pure
/// function of the codes — identical under every kernel dispatch.
#[derive(Debug, Clone)]
pub struct QuantQuery {
    codes: Vec<i8>,
    uscale: f32,
    /// Σ codes (exact).
    code_sum: i32,
    /// Σ |u_j| of the original f32 query, in f64.
    abs_sum: f64,
}

impl QuantQuery {
    /// Quantize a query. An all-zero query gets `uscale = 0` and zero
    /// codes (every approximate score is then 0 and the scan falls
    /// back to the exact path via the sufficiency check).
    pub fn from_query(query: &[f32]) -> QuantQuery {
        let max_abs = query.iter().fold(0.0f64, |m, &u| m.max((u as f64).abs()));
        let abs_sum = query.iter().map(|&u| (u as f64).abs()).sum();
        if max_abs > 0.0 {
            let uscale = (max_abs / 127.0) as f32;
            let s64 = uscale as f64;
            let mut code_sum = 0i32;
            let codes = query
                .iter()
                .map(|&u| {
                    let c = ((u as f64) / s64).round().clamp(-127.0, 127.0) as i32;
                    code_sum += c;
                    c as i8
                })
                .collect();
            QuantQuery {
                codes,
                uscale,
                code_sum,
                abs_sum,
            }
        } else {
            QuantQuery {
                codes: vec![0; query.len()],
                uscale: 0.0,
                code_sum: 0,
                abs_sum,
            }
        }
    }

    /// The query codes (length `K`).
    #[inline]
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The approximate score for a row with integer dot `d` and
    /// dequantization params `(min, scale)` (see the type docs).
    #[inline]
    pub fn approx_score(&self, d: i32, min: f32, scale: f32) -> f32 {
        self.uscale * (min * self.code_sum as f32 + scale * (d + 128 * self.code_sum) as f32)
    }

    /// Block form of [`approx_score`](Self::approx_score): combine a
    /// chunk's integer dots with its dequantization params in one
    /// auto-vectorizable pass over contiguous slices.
    ///
    /// Same arithmetic as the scalar form up to float reassociation;
    /// the few-ulp reassociation slack is covered by
    /// [`error_bound`](Self::error_bound)'s magnitude term. Pure f32
    /// arithmetic on integer inputs with no dispatch branch, so the
    /// output is identical under every kernel selection.
    pub fn approx_block(&self, dots: &[i32], mins: &[f32], scales: &[f32], out: &mut [f32]) {
        debug_assert_eq!(dots.len(), out.len());
        debug_assert_eq!(mins.len(), out.len());
        debug_assert_eq!(scales.len(), out.len());
        let a = self.uscale * self.code_sum as f32;
        let c128 = (128 * self.code_sum) as f32;
        let u = self.uscale;
        for (((o, &d), &mn), &sc) in out.iter_mut().zip(dots).zip(mins).zip(scales) {
            *o = a * mn + u * sc * (d as f32 + c128);
        }
    }

    /// Rigorous **per-row** upper bound on the exact f32 score of the
    /// row with integer dot `d`, dequantization params `(min, scale)`
    /// and dequantized absolute sum `abs_row`
    /// ([`taxrec_factors::QuantChunk::abs_sum`]):
    ///
    /// ```text
    /// s ≤ ŝ + Σ|u_j| · scale/2 + uscale/2 · Σ|x̂_j|
    /// ```
    ///
    /// (row-quantization error + query-quantization error). Evaluated
    /// in f64 — the combine's own rounding is then below 1 ulp of f32
    /// — inflated by a small relative slack covering both the f32
    /// rounding of the stored `abs_row` and the f32 summation error of
    /// the *exact* lane-split dot the bound is compared against
    /// (≤ K·ε·Σ|u||x|, three orders below the err terms themselves),
    /// and rounded **up** on the final cast.
    /// Integer `d` makes the result a pure function of the codes:
    /// identical under every kernel dispatch.
    ///
    /// This is what the quantized scan ranks its candidate pool by:
    /// if the k-th *exact* rescored score beats the pool's smallest
    /// upper bound, no row outside the pool can belong to the exact
    /// top-K.
    #[inline]
    pub fn score_upper_bound(&self, d: i32, min: f32, scale: f32, abs_row: f32) -> f32 {
        let c = self.code_sum as f64;
        let u = self.uscale as f64;
        let s = u * (min as f64 * c + scale as f64 * (d as f64 + 128.0 * c));
        let err = 0.5 * (self.abs_sum * scale as f64 + u * abs_row as f64);
        (((s + err * (1.0 + 1e-3)) as f32).next_up()).next_up()
    }

    /// Rigorous upper bound on `|exact − approximate|` for any row of
    /// a table with the given running maxima
    /// ([`QuantMatrix::max_scale`] / [`QuantMatrix::max_abs_sum`]):
    ///
    /// ```text
    /// |s − ŝ| ≤ Σ|u_j| · max_scale/2        (row quantization)
    ///         + uscale/2 · max_abs_sum      (query quantization)
    /// ```
    ///
    /// inflated by a small relative + magnitude-scaled slack for the
    /// f32 rounding of the combine itself.
    ///
    /// [`QuantMatrix::max_scale`]: taxrec_factors::QuantMatrix::max_scale
    /// [`QuantMatrix::max_abs_sum`]: taxrec_factors::QuantMatrix::max_abs_sum
    pub fn error_bound(&self, max_scale: f64, max_abs_sum: f64) -> f64 {
        let uscale = self.uscale as f64;
        let eps = 0.5 * (self.abs_sum * max_scale + uscale * max_abs_sum);
        // Magnitude of the scores involved, for the float-rounding
        // slack: |ŝ| ≤ max|x̂| · Σ|û_j| ≤ max_abs_sum · (Σ|u_j| + K·uscale/2).
        let magnitude = max_abs_sum * (self.abs_sum + 0.5 * uscale * self.codes.len() as f64);
        eps * (1.0 + 1e-3) + magnitude * 1e-5
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_castsi256_si128,
        _mm256_cvtepi8_epi16, _mm256_extracti128_si256, _mm256_hadd_epi32, _mm256_loadu_ps,
        _mm256_madd_epi16, _mm256_mul_ps, _mm256_setzero_ps, _mm256_setzero_si256,
        _mm256_storeu_ps, _mm256_storeu_si256, _mm_add_epi32, _mm_loadu_si128, _mm_storeu_si128,
    };
    use taxrec_factors::ops::{reduce_lanes, DOT_LANES};

    /// AVX2 lane-split dot — bit-identical to [`taxrec_factors::ops::dot`]:
    /// vertical `mul + add` per 8-lane chunk accumulates each lane in
    /// the same order as the scalar loop, the tail lands in lanes
    /// `0..tail_len`, and the reduction is the shared pairwise tree.
    ///
    /// # Safety
    /// AVX2 must be available (checked at kernel construction).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / DOT_LANES;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let pa = _mm256_loadu_ps(a.as_ptr().add(c * DOT_LANES));
            let pb = _mm256_loadu_ps(b.as_ptr().add(c * DOT_LANES));
            // mul then add — FMA would fuse the rounding step the
            // scalar kernel performs, breaking bit-identity.
            acc = _mm256_add_ps(acc, _mm256_mul_ps(pa, pb));
        }
        let mut lanes = [0.0f32; DOT_LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, i) in (chunks * DOT_LANES..n).enumerate() {
            lanes[l] += a[i] * b[i];
        }
        reduce_lanes(&lanes)
    }

    /// Exact AVX2 int8 dot: sign-extend 16 codes to i16
    /// (`cvtepi8_epi16` — *not* `maddubs`, whose i16 saturation would
    /// lose exactness), multiply-add pairs into i32 lanes, reduce.
    ///
    /// # Safety
    /// AVX2 must be available (checked at kernel construction).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 16;
        let mut acc = _mm256_setzero_si256();
        for c in 0..chunks {
            let pa = _mm_loadu_si128(a.as_ptr().add(c * 16).cast::<__m128i>());
            let pb = _mm_loadu_si128(b.as_ptr().add(c * 16).cast::<__m128i>());
            let prod = _mm256_madd_epi16(_mm256_cvtepi8_epi16(pa), _mm256_cvtepi8_epi16(pb));
            acc = _mm256_add_epi32(acc, prod);
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
        let mut sum: i32 = lanes.iter().sum();
        for i in chunks * 16..n {
            sum += a[i] as i32 * b[i] as i32;
        }
        sum
    }

    /// Widest query (in 16-code chunks) the pre-widened register set
    /// of [`dot_i8_block`] covers; longer rows take the per-row path.
    const MAX_Q_CHUNKS: usize = 16;

    /// [`dot_i8`] against every row of a row-major block, organised
    /// for throughput (integer arithmetic is exact, so any evaluation
    /// order returns the identical dots): the query codes are widened
    /// to i16 **once**, four rows accumulate concurrently, and one
    /// `hadd` tree reduces all four sums — per-row horizontal
    /// reductions are what made the naive loop slower than the f32
    /// scan it was meant to beat.
    ///
    /// # Safety
    /// AVX2 must be available (checked at kernel construction).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_block(q: &[i8], rows: &[i8], out: &mut [i32]) {
        let k = q.len();
        debug_assert!(k > 0);
        debug_assert_eq!(rows.len(), out.len() * k);
        let chunks = k / 16;
        if chunks == 0 || chunks > MAX_Q_CHUNKS {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(k)) {
                *o = dot_i8(q, row);
            }
            return;
        }
        let mut qw = [_mm256_setzero_si256(); MAX_Q_CHUNKS];
        for (c, slot) in qw.iter_mut().enumerate().take(chunks) {
            *slot = _mm256_cvtepi8_epi16(_mm_loadu_si128(q.as_ptr().add(c * 16).cast::<__m128i>()));
        }
        let n = out.len();
        let mut r = 0usize;
        while r + 4 <= n {
            let mut acc = [_mm256_setzero_si256(); 4];
            for (c, &qc) in qw.iter().enumerate().take(chunks) {
                for (i, a) in acc.iter_mut().enumerate() {
                    let p =
                        _mm_loadu_si128(rows.as_ptr().add((r + i) * k + c * 16).cast::<__m128i>());
                    *a = _mm256_add_epi32(*a, _mm256_madd_epi16(qc, _mm256_cvtepi8_epi16(p)));
                }
            }
            // hadd pairs fold the four 8-lane accumulators into one
            // vector whose 128-bit halves hold the per-row partial
            // sums in order; one cross-half add finishes all four.
            let h01 = _mm256_hadd_epi32(acc[0], acc[1]);
            let h23 = _mm256_hadd_epi32(acc[2], acc[3]);
            let h = _mm256_hadd_epi32(h01, h23);
            let mut four = [0i32; 4];
            _mm_storeu_si128(
                four.as_mut_ptr().cast::<__m128i>(),
                _mm_add_epi32(_mm256_castsi256_si128(h), _mm256_extracti128_si256(h, 1)),
            );
            for (i, f) in four.into_iter().enumerate() {
                let mut sum = f;
                for j in chunks * 16..k {
                    sum += q[j] as i32 * rows[(r + i) * k + j] as i32;
                }
                out[r + i] = sum;
            }
            r += 4;
        }
        while r < n {
            out[r] = dot_i8(q, &rows[r * k..(r + 1) * k]);
            r += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        // Deterministic awkward values: mixed signs and magnitudes so
        // summation order matters (catches any non-lane-split kernel).
        let a: Vec<f32> = (0..n)
            .map(|i| ((i * 37 % 97) as f32 - 48.0) * 0.731)
            .collect();
        let b: Vec<f32> = (0..n)
            .map(|i| ((i * 61 % 89) as f32 - 44.0) * -0.413)
            .collect();
        (a, b)
    }

    #[test]
    fn every_kernel_matches_scalar_bit_for_bit() {
        // Lengths straddling every tail case of both the 8-lane f32
        // and the 16-lane i8 main loops.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100] {
            let (a, b) = vecs(n);
            let want = ops::dot(&a, &b);
            for kernel in [F32Kernel::Scalar, F32Kernel::detect()] {
                let got = kernel.dot(&a, &b);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "kernel {} at n={n}: {got} != {want}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn score_block_matches_scalar_for_ragged_blocks() {
        for (rows, k) in [(5usize, 3usize), (4, 8), (3, 13), (7, 16), (2, 20)] {
            let (flat, _) = vecs(rows * k);
            let (query, _) = vecs(k);
            let mut scalar_out = vec![0.0f32; rows];
            F32Kernel::Scalar.score_block(&query, &flat, &mut scalar_out);
            let mut simd_out = vec![0.0f32; rows];
            F32Kernel::detect().score_block(&query, &flat, &mut simd_out);
            for (s, v) in scalar_out.iter().zip(&simd_out) {
                assert_eq!(s.to_bits(), v.to_bits(), "rows={rows} k={k}");
            }
        }
    }

    #[test]
    fn int8_kernels_agree_exactly() {
        for n in [0usize, 1, 5, 15, 16, 17, 32, 47, 64] {
            let a: Vec<i8> = (0..n)
                .map(|i| ((i * 83 % 255) as i32 - 128) as i8)
                .collect();
            let b: Vec<i8> = (0..n)
                .map(|i| ((i * 29 % 255) as i32 - 127) as i8)
                .collect();
            let want = dot_i8_scalar(&a, &b);
            assert_eq!(F32Kernel::detect().dot_i8(&a, &b), want, "n={n}");
            assert_eq!(F32Kernel::Scalar.dot_i8(&a, &b), want, "n={n}");
        }
    }

    #[test]
    fn int8_block_kernel_matches_per_row_dots() {
        // Widths straddling the 16-code chunking (tails, exact
        // multiples, the >MAX_Q_CHUNKS spill path) × row counts
        // straddling the 4-row unroll.
        for k in [1usize, 5, 16, 20, 32, 33, 48, 260] {
            for n_rows in [0usize, 1, 3, 4, 5, 8, 11] {
                let q: Vec<i8> = (0..k)
                    .map(|i| ((i * 83 % 255) as i32 - 128) as i8)
                    .collect();
                let rows: Vec<i8> = (0..k * n_rows)
                    .map(|i| ((i * 29 % 255) as i32 - 127) as i8)
                    .collect();
                let want: Vec<i32> = (0..n_rows)
                    .map(|r| dot_i8_scalar(&q, &rows[r * k..(r + 1) * k]))
                    .collect();
                for kernel in [F32Kernel::Scalar, F32Kernel::detect()] {
                    let mut got = vec![0i32; n_rows];
                    kernel.dot_i8_block(&q, &rows, &mut got);
                    assert_eq!(got, want, "kernel {} k={k} rows={n_rows}", kernel.name());
                }
            }
        }
    }

    #[test]
    fn parse_and_names() {
        assert_eq!(F32Kernel::parse("scalar"), Ok(F32Kernel::Scalar));
        let simd = F32Kernel::parse("simd").unwrap();
        assert_eq!(simd, F32Kernel::detect());
        assert!(F32Kernel::parse("turbo").is_err());
        assert_eq!(F32Kernel::Scalar.name(), "scalar");
    }

    #[test]
    fn quant_query_zero_and_error_bound() {
        let q = QuantQuery::from_query(&[0.0, 0.0, 0.0]);
        assert_eq!(q.approx_score(0, 1.0, 1.0), 0.0);
        assert_eq!(q.error_bound(1.0, 1.0), 0.0);

        let q = QuantQuery::from_query(&[1.0, -2.0, 0.5]);
        assert!(q.error_bound(0.01, 10.0) > 0.0);
        // Codes recover the query up to uscale/2 per element.
        let uscale = 2.0 / 127.0;
        for (c, u) in q.codes().iter().zip([1.0f32, -2.0, 0.5]) {
            assert!((*c as f32 * uscale - u).abs() <= uscale / 2.0 + 1e-6);
        }
    }
}
