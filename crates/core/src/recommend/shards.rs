//! Catalog partitioning for sharded exhaustive scans, plus the
//! deterministic scatter-gather merge.
//!
//! At catalog scale the exhaustive scan itself must be partitioned —
//! the same way analytical engines split a table scan across workers.
//! [`CatalogPartition::plan`] cuts the dense item-id space into `S`
//! **contiguous** ranges:
//!
//! * **Subtree-aligned** when the taxonomy permits it: if every
//!   top-level category subtree owns one contiguous run of item ids
//!   (and there are at least `S` such runs), whole subtrees are packed
//!   into shards balanced by item count — a shard then corresponds to a
//!   set of top-level categories, which keeps category-local update
//!   traffic (new items under one department) on one shard.
//! * **Even ranges** otherwise: `S` near-equal contiguous slices of the
//!   id space. Generated catalogs interleave items across categories
//!   (items land in id order, not subtree order), so this is the common
//!   fallback.
//!
//! Either way the partition tiles the catalog exactly once: no gaps, no
//! overlap, no empty shard. Each shard is scanned with the same blocked
//! top-K kernel as the unsharded engine, and the per-shard winners are
//! merged by [`merge_topk`] under the total order
//! **(score descending, item id ascending)** — the identical tie-break
//! the single-heap path uses, which is what makes the sharded ranking
//! bit-for-bit equal to the unsharded one (property-tested in
//! `tests/proptest_shards.rs`, replayed end-to-end in
//! `tests/differential_shards.rs`).

use super::topk::rank_cmp;
use taxrec_taxonomy::{ItemId, Taxonomy};

/// One contiguous range of item ids owned by a scan shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First item id (inclusive).
    pub start: usize,
    /// Past-the-end item id.
    pub end: usize,
}

impl ShardRange {
    /// Number of items in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff the range owns no items.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// How a catalog was cut into scan shards (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogPartition {
    ranges: Vec<ShardRange>,
    aligned: bool,
}

impl CatalogPartition {
    /// Partition the items of `tax` into at most `shards` contiguous
    /// ranges. The shard count is clamped to `[1, num_items]` so no
    /// shard is ever empty; a zero-item catalog yields one empty range.
    pub fn plan(tax: &Taxonomy, shards: usize) -> CatalogPartition {
        let n = tax.num_items();
        if n == 0 {
            return CatalogPartition {
                ranges: vec![ShardRange { start: 0, end: 0 }],
                aligned: false,
            };
        }
        let shards = shards.clamp(1, n);
        if shards == 1 {
            // The full range trivially starts and ends on subtree
            // boundaries; skip the per-item ancestor walk entirely —
            // this is the default path of every unsharded engine.
            return CatalogPartition {
                ranges: vec![ShardRange { start: 0, end: n }],
                aligned: true,
            };
        }

        // Maximal runs of consecutive item ids sharing a top-level
        // (level-1) ancestor. Alignment is possible iff every subtree
        // owns exactly one run — i.e. runs == distinct ancestors — and
        // there are enough runs to cut.
        let mut runs: Vec<(u32, u64)> = Vec::new();
        for i in 0..n {
            let top = tax.ancestor_at_level(tax.item_node(ItemId(i as u32)), 1).0;
            match runs.last_mut() {
                Some((t, c)) if *t == top => *c += 1,
                _ => runs.push((top, 1)),
            }
        }
        let mut tops: Vec<u32> = runs.iter().map(|&(t, _)| t).collect();
        tops.sort_unstable();
        tops.dedup();
        let aligned = tops.len() == runs.len() && runs.len() >= shards;

        let ranges = if aligned {
            // Pack whole runs into exactly `shards` contiguous groups
            // balanced by item count.
            let counts: Vec<u64> = runs.iter().map(|&(_, c)| c).collect();
            let mut run_start = Vec::with_capacity(runs.len() + 1);
            let mut acc = 0usize;
            for &c in &counts {
                run_start.push(acc);
                acc += c as usize;
            }
            run_start.push(acc);
            pack(&counts, shards)
                .into_iter()
                .map(|(s, e)| ShardRange {
                    start: run_start[s],
                    end: run_start[e],
                })
                .collect()
        } else {
            (0..shards)
                .map(|i| ShardRange {
                    start: i * n / shards,
                    end: (i + 1) * n / shards,
                })
                .collect()
        };
        CatalogPartition { ranges, aligned }
    }

    /// The shard ranges, in item-id order.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` iff the partition holds no ranges (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// `true` iff every shard boundary coincides with a top-level
    /// subtree boundary (the aligned mode of the module docs).
    pub fn aligned(&self) -> bool {
        self.aligned
    }
}

/// Pack `counts` (one weight per contiguous unit) into **exactly**
/// `min(groups, counts.len())` contiguous `(start, end)` spans of
/// near-equal total weight. Every unit lands in exactly one span and
/// every span is non-empty — unlike the greedy batch planner, a heavy
/// unit at the end can never collapse the packing to fewer groups
/// (each group reserves one unit per group still to come). Shared by
/// the aligned partitioner (units = subtree runs) and the scatter
/// executor (units = shards spread over workers).
pub fn pack(counts: &[u64], groups: usize) -> Vec<(usize, usize)> {
    let groups = groups.max(1).min(counts.len());
    if counts.is_empty() {
        return Vec::new();
    }
    let mut remaining: u64 = counts.iter().sum();
    let mut spans = Vec::with_capacity(groups);
    let mut idx = 0usize;
    for g in 0..groups {
        let groups_left = groups - g;
        // Leave at least one unit for every group still to come.
        let max_end = counts.len() - (groups_left - 1);
        let start = idx;
        let target = (remaining / groups_left as u64).max(1);
        let mut acc = counts[idx];
        idx += 1;
        if groups_left == 1 {
            while idx < counts.len() {
                acc += counts[idx];
                idx += 1;
            }
        } else {
            while idx < max_end && acc < target {
                acc += counts[idx];
                idx += 1;
            }
        }
        remaining -= acc;
        spans.push((start, idx));
    }
    spans
}

/// Deterministic scatter-gather merge: fold per-shard top-K lists (each
/// already sorted best-first) into the global top-`k`, draining the
/// partial vectors.
///
/// The comparator is [`rank_cmp`](super::rank_cmp) — THE shared total
/// order (score descending, item id ascending) every selection path of
/// this crate uses. Because item ids are distinct the order is total,
/// so the merge is deterministic regardless of shard count or arrival
/// order, and equals what one catalog-wide heap would have produced:
/// every global winner is also a winner of its own shard (a total
/// order restricted to a subset keeps its top elements), so
/// concatenating the per-shard top-`k` lists always contains the
/// global top-`k`.
pub fn merge_topk(partials: &mut [Vec<(ItemId, f32)>], k: usize, out: &mut Vec<(ItemId, f32)>) {
    out.clear();
    for p in partials.iter_mut() {
        out.append(p);
    }
    out.sort_by(rank_cmp);
    out.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxrec_taxonomy::{NodeId, TaxonomyBuilder};

    /// A 2-level taxonomy whose items are contiguous per top-level
    /// category: cat_i gets `counts[i]` items, in order.
    fn contiguous_tax(counts: &[usize]) -> Taxonomy {
        let mut b = TaxonomyBuilder::new();
        let cats: Vec<NodeId> = counts
            .iter()
            .map(|_| b.add_child(NodeId::ROOT).unwrap())
            .collect();
        for (cat, &c) in cats.iter().zip(counts) {
            for _ in 0..c {
                b.add_child(*cat).unwrap();
            }
        }
        b.freeze()
    }

    /// A taxonomy whose items alternate between two categories, so no
    /// subtree owns a contiguous id run.
    fn interleaved_tax(n: usize) -> Taxonomy {
        let mut b = TaxonomyBuilder::new();
        let a = b.add_child(NodeId::ROOT).unwrap();
        let c = b.add_child(NodeId::ROOT).unwrap();
        for i in 0..n {
            b.add_child(if i % 2 == 0 { a } else { c }).unwrap();
        }
        b.freeze()
    }

    fn assert_covers(p: &CatalogPartition, n: usize) {
        let mut next = 0usize;
        for r in p.ranges() {
            assert_eq!(r.start, next, "gap or overlap at {next}");
            assert!(!r.is_empty() || n == 0, "empty shard {r:?}");
            next = r.end;
        }
        assert_eq!(next, n, "items dropped");
    }

    #[test]
    fn aligned_partition_cuts_at_subtree_boundaries() {
        let tax = contiguous_tax(&[10, 30, 5, 15, 20]);
        let p = CatalogPartition::plan(&tax, 3);
        assert!(p.aligned());
        assert_covers(&p, 80);
        // Every boundary is a cumulative subtree boundary.
        let bounds: Vec<usize> = vec![0, 10, 40, 45, 60, 80];
        for r in p.ranges() {
            assert!(bounds.contains(&r.start), "{r:?} not subtree-aligned");
            assert!(bounds.contains(&r.end), "{r:?} not subtree-aligned");
        }
    }

    #[test]
    fn aligned_partition_never_collapses_below_the_requested_count() {
        // A heavy subtree at the end: a greedy close-on-target cut
        // would swallow every run into one shard. `pack` must still
        // emit exactly 3.
        for counts in [
            vec![5usize, 5, 50],
            vec![1, 1, 10],
            vec![1, 1, 1, 37],
            vec![30, 1, 1],
        ] {
            let tax = contiguous_tax(&counts);
            let p = CatalogPartition::plan(&tax, 3);
            assert!(p.aligned(), "{counts:?}");
            assert_covers(&p, counts.iter().sum());
            assert_eq!(p.len(), 3, "{counts:?} collapsed to {:?}", p.ranges());
        }
    }

    #[test]
    fn pack_emits_exactly_min_groups_and_covers() {
        for (counts, groups) in [
            (vec![5u64, 5, 50], 3usize),
            (vec![50, 5, 5], 3),
            (vec![1; 10], 4),
            (vec![9], 5),
            (vec![3, 3], 1),
        ] {
            let spans = pack(&counts, groups);
            assert_eq!(spans.len(), groups.min(counts.len()), "{counts:?}");
            let mut next = 0usize;
            for &(s, e) in &spans {
                assert_eq!(s, next, "{counts:?}: gap/overlap");
                assert!(e > s, "{counts:?}: empty span");
                next = e;
            }
            assert_eq!(next, counts.len(), "{counts:?}: units dropped");
        }
        assert!(pack(&[], 3).is_empty());
    }

    #[test]
    fn single_shard_is_trivially_aligned_without_the_ancestor_walk() {
        let p = CatalogPartition::plan(&interleaved_tax(12), 1);
        assert!(p.aligned());
        assert_eq!(p.ranges(), &[ShardRange { start: 0, end: 12 }]);
    }

    #[test]
    fn interleaved_catalog_falls_back_to_even_ranges() {
        let tax = interleaved_tax(20);
        let p = CatalogPartition::plan(&tax, 4);
        assert!(!p.aligned());
        assert_covers(&p, 20);
        assert_eq!(p.len(), 4);
        for r in p.ranges() {
            assert_eq!(r.len(), 5);
        }
    }

    #[test]
    fn more_shards_than_subtrees_falls_back() {
        let tax = contiguous_tax(&[40, 40]);
        let p = CatalogPartition::plan(&tax, 4);
        assert!(!p.aligned(), "2 subtrees cannot align 4 shards");
        assert_covers(&p, 80);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn shard_count_clamped_to_catalog() {
        let tax = contiguous_tax(&[1, 1, 1]);
        let p = CatalogPartition::plan(&tax, 64);
        assert_covers(&p, 3);
        assert_eq!(p.len(), 3);
        let p = CatalogPartition::plan(&tax, 0);
        assert_covers(&p, 3);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn empty_catalog_yields_one_empty_range() {
        let tax = TaxonomyBuilder::new().freeze();
        let p = CatalogPartition::plan(&tax, 4);
        assert_eq!(p.ranges(), &[ShardRange { start: 0, end: 0 }]);
    }

    #[test]
    fn merge_matches_single_heap_and_breaks_ties_by_id() {
        use super::super::TopK;
        // Scores with duplicates straddling shard boundaries.
        let scores = [1.0f32, 3.0, 2.0, 3.0, 0.5, 2.0, 3.0, -1.0, 2.0];
        let k = 4;
        // Oracle: one heap over everything.
        let mut heap = TopK::new();
        heap.reset(k);
        for (i, &s) in scores.iter().enumerate() {
            heap.offer(ItemId(i as u32), s);
        }
        let mut want = Vec::new();
        heap.drain_sorted_into(&mut want);
        // Sharded: three ranges, per-shard heaps, merged.
        let mut partials = Vec::new();
        for range in [0..3usize, 3..6, 6..9] {
            let mut t = TopK::new();
            t.reset(k);
            for i in range {
                t.offer(ItemId(i as u32), scores[i]);
            }
            let mut v = Vec::new();
            t.drain_sorted_into(&mut v);
            partials.push(v);
        }
        let mut got = Vec::new();
        merge_topk(&mut partials, k, &mut got);
        assert_eq!(got, want);
        // Ties (three 3.0 scores) come out in ascending id order.
        assert_eq!(got[0].0, ItemId(1));
        assert_eq!(got[1].0, ItemId(3));
        assert_eq!(got[2].0, ItemId(6));
    }

    #[test]
    fn merge_truncates_and_drains() {
        let mut partials = vec![vec![(ItemId(0), 5.0f32)], vec![(ItemId(1), 7.0)]];
        let mut out = Vec::new();
        merge_topk(&mut partials, 1, &mut out);
        assert_eq!(out, vec![(ItemId(1), 7.0)]);
        assert!(
            partials.iter().all(|p| p.is_empty()),
            "partials not drained"
        );
        merge_topk(&mut partials, 0, &mut out);
        assert!(out.is_empty());
    }
}
