//! Live snapshots: a plain model encoding plus an appended live
//! section.
//!
//! ```text
//! persist::encode(model)            — self-delimiting (decode_prefix)
//! live section:
//!   magic  u32 = 0x5446_4c53 ("TFLS"), version u8 = 1
//!   base_users u64, base_items u64
//!   folded u32, per folded user: u32 baskets, per basket u32 items, items…
//! ```
//!
//! Because [`crate::persist::decode`] tolerates trailing bytes (format
//! rule since v2), a live snapshot **is** a valid `.tfm` model file:
//! `taxrec inspect` and plain `decode` read the model and skip the live
//! section, while [`decode_live`] reads both and reconstructs the full
//! [`LiveState`] — folded users keep their ids *and* their histories.
//! A snapshot of a never-updated model is byte-identical to
//! `persist::encode` output, and [`decode_live`] accepts plain model
//! files too (all users then count as trained).

use super::state::LiveState;
use crate::persist::bytes_shim::{get_u32, get_u64, put_u32, put_u64};
use crate::persist::{self, PersistError};
use std::sync::Arc;
use taxrec_dataset::Transaction;

const LIVE_MAGIC: u32 = 0x5446_4c53; // "TFLS"
const LIVE_VERSION: u8 = 1;

/// Serialise the full live state (model + live section).
pub fn encode_live(state: &LiveState) -> Vec<u8> {
    let mut out = persist::encode(state.model());
    if state.base_users() == state.model().num_users()
        && state.base_items() == state.model().num_items()
    {
        // Nothing live yet: stay byte-identical to a plain model file.
        return out;
    }
    put_u32(&mut out, LIVE_MAGIC);
    out.push(LIVE_VERSION);
    put_u64(&mut out, state.base_users() as u64);
    put_u64(&mut out, state.base_items() as u64);
    put_u32(&mut out, state.histories().len() as u32);
    for history in state.histories() {
        put_u32(&mut out, history.len() as u32);
        for basket in history.iter() {
            put_u32(&mut out, basket.len() as u32);
            for item in basket {
                put_u32(&mut out, item.0);
            }
        }
    }
    out
}

/// Decode a live snapshot **or** a plain model file into a
/// [`LiveState`]. Never panics on arbitrary input.
pub fn decode_live(buf: &[u8]) -> Result<LiveState, PersistError> {
    let (model, mut pos) = persist::decode_prefix(buf)?;
    if pos == buf.len() {
        return Ok(LiveState::new(model));
    }
    let magic = get_u32(buf, &mut pos)?;
    if magic != LIVE_MAGIC {
        return Err(PersistError::Corrupt(format!(
            "bad live-section magic 0x{magic:08x}, expected 0x{LIVE_MAGIC:08x}"
        )));
    }
    match buf.get(pos) {
        Some(&LIVE_VERSION) => pos += 1,
        Some(&v) => {
            return Err(PersistError::Corrupt(format!(
                "unsupported live-section version {v}"
            )))
        }
        None => return Err(PersistError::Corrupt("missing live-section version".into())),
    }
    let base_users = get_u64(buf, &mut pos)? as usize;
    let base_items = get_u64(buf, &mut pos)? as usize;
    let folded = get_u32(buf, &mut pos)? as usize;
    if base_users.checked_add(folded) != Some(model.num_users()) {
        return Err(PersistError::Corrupt(format!(
            "live section covers {base_users}+{folded} users, model has {}",
            model.num_users()
        )));
    }
    if base_items > model.num_items() {
        return Err(PersistError::Corrupt(format!(
            "base_items {base_items} exceeds model catalog {}",
            model.num_items()
        )));
    }
    let n_items = model.num_items();
    let mut histories: Vec<Arc<[Transaction]>> = Vec::with_capacity(folded.min(1 << 16));
    for _ in 0..folded {
        // Same guarded nested decode (and item-range check) as the
        // event codec — one implementation for both formats.
        let history = super::event::decode_baskets(buf, &mut pos, Some(n_items))?;
        histories.push(Arc::from(history.as_slice()));
    }
    if pos != buf.len() {
        return Err(PersistError::Corrupt(format!(
            "{} stray bytes after live section",
            buf.len() - pos
        )));
    }
    Ok(LiveState::from_parts(
        model, base_users, base_items, histories,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::live::UpdateEvent;
    use crate::train::TfTrainer;
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};
    use taxrec_taxonomy::{ItemId, NodeId};

    fn live_state() -> (SyntheticDataset, LiveState) {
        let d = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(120), 23);
        let m = TfTrainer::new(
            ModelConfig::tf(4, 1).with_factors(6).with_epochs(1),
            &d.taxonomy,
        )
        .fit(&d.train, 1);
        (d, LiveState::new(m))
    }

    #[test]
    fn pristine_state_encodes_as_plain_model() {
        let (_, s) = live_state();
        let enc = encode_live(&s);
        assert_eq!(enc, persist::encode(s.model()));
        let dec = decode_live(&enc).unwrap();
        assert_eq!(dec.base_users(), s.base_users());
        assert_eq!(dec.histories().len(), 0);
    }

    #[test]
    fn roundtrip_with_live_section() {
        let (d, mut s) = live_state();
        let parent = {
            let tax = s.model().taxonomy();
            tax.parent(tax.item_node(ItemId(1))).unwrap()
        };
        s.apply(&UpdateEvent::AddItem { parent }).unwrap();
        s.apply(&UpdateEvent::FoldInUser {
            history: d.train.user(5).to_vec(),
            steps: 60,
            seed: 8,
        })
        .unwrap();
        let enc = encode_live(&s);
        // Plain decode still reads the model (trailing live section).
        let plain = persist::decode(&enc).unwrap();
        assert_eq!(plain.num_users(), s.model().num_users());
        // Full decode restores base counts and histories.
        let dec = decode_live(&enc).unwrap();
        assert_eq!(dec.base_users(), s.base_users());
        assert_eq!(dec.base_items(), s.base_items());
        assert_eq!(dec.histories().len(), 1);
        assert_eq!(
            dec.folded_history(s.base_users()).unwrap(),
            s.folded_history(s.base_users()).unwrap()
        );
        assert_eq!(dec.model().user_factors, s.model().user_factors);
    }

    #[test]
    fn corrupt_live_sections_error_cleanly() {
        let (d, mut s) = live_state();
        s.apply(&UpdateEvent::FoldInUser {
            history: d.train.user(2).to_vec(),
            steps: 10,
            seed: 1,
        })
        .unwrap();
        let enc = encode_live(&s);
        let model_len = persist::decode_prefix(&enc).unwrap().1;
        // A cut exactly at the model boundary is a *valid plain model*
        // (that is the compatibility story); anything inside the live
        // section fails cleanly, never panics.
        assert!(decode_live(&enc[..model_len]).is_ok());
        assert_eq!(decode_live(&enc[..model_len]).unwrap().histories().len(), 0);
        for cut in model_len + 1..enc.len() {
            assert!(decode_live(&enc[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped magic fails.
        let mut bad = enc.clone();
        bad[model_len] ^= 0xFF;
        assert!(decode_live(&bad).is_err());
    }

    #[test]
    fn rejects_unknown_parent_node() {
        let (_, mut s) = live_state();
        assert!(s
            .apply(&UpdateEvent::AddItem {
                parent: NodeId(u32::MAX)
            })
            .is_err());
    }
}
