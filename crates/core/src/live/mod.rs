//! Live-model serving: hot-swappable snapshots over an online update
//! stream.
//!
//! The paper's production claims (Sec. 6, Fig. 7c) are about *change*:
//! new items are released continuously and inherit their category's
//! factors; unseen users are folded in against frozen item factors.
//! The offline primitives for both already exist in [`crate::dynamic`];
//! this module turns them into an online data path:
//!
//! ```text
//!  readers ──► ModelCell::load() ──► Arc<LiveEngine> ─── recommend_batch
//!                   ▲                  (immutable snapshot: model,
//!                   │ publish           scorer, dense item matrix,
//!                   │                   folded-user histories, epoch)
//!  UpdateEvent ─► LiveHandle ─► applier thread
//!    AddItem        (queue)      · drain a batch
//!    FoldInUser                  · LiveState::apply per event
//!                                · append to the event log   (WAL)
//!                                · RecommendEngine::grown_from
//!                                · ModelCell::publish (epoch += 1)
//!                                · every N events: .tfm snapshot
//! ```
//!
//! Three design rules, each load-bearing:
//!
//! 1. **Readers never block and never see a mix.** [`ModelCell`] is an
//!    epoch/RCU-style cell: `load()` hands out a clone of the current
//!    `Arc<LiveEngine>`; a snapshot is immutable, so an in-flight batch
//!    keeps scoring against the engine it started with while the
//!    applier publishes the next one. The only shared mutable state is
//!    the `Arc` slot itself, swapped under a briefly-held lock.
//! 2. **Publishes cost `O(change)`, not `O(model)` — end to end.** The
//!    successor engine is derived via
//!    [`crate::recommend::RecommendEngine::grown_from`]: the dense item
//!    matrix and the effective-factor tables are
//!    [`taxrec_factors::GrowMatrix`]es whose base is shared with the
//!    predecessor snapshot and whose appended tail holds only the new
//!    rows. The authoritative [`crate::TfModel`] is **persistent** too:
//!    its factor tables are chunked copy-on-write matrices
//!    ([`taxrec_factors::CowMatrix`]) and its path table sits behind an
//!    `Arc`, so the per-publish `model().clone()` bumps refcounts
//!    instead of copying factors, and the events that preceded the
//!    publish copied only the chunks they touched. The applier records
//!    the publish latency histogram and a shared/copied chunk counter
//!    pair ([`LiveStats`]) so `GET /live/stats` *proves* the sharing in
//!    production; `fig7c_live`'s publish sweep guards it in CI.
//! 3. **`snapshot + replay(log) ≡ live state`.** Every applied event is
//!    appended to a length-prefixed binary event log before it becomes
//!    visible; events are deterministic (fold-ins carry their seed), so
//!    replaying the log over the last snapshot reproduces the live
//!    model bit-for-bit. Property-tested in
//!    `crates/core/tests/proptest_live.rs`.
//!
//! Entry points: build a [`LiveState`] from a trained model, spawn a
//! [`LiveHandle`], hand its [`ModelCell`] to readers and submit
//! [`UpdateEvent`]s. `taxrec serve` does exactly this; `taxrec replay`
//! drives [`replay`] offline. Because the log is deterministic and
//! lineage-stamped, shipping it over a socket is enough to keep a
//! whole fleet of read replicas converged — see [`replication`].

mod cell;
mod engine;
mod event;
mod queue;
pub mod replication;
pub mod snapshot;
mod state;
mod stats;

pub use cell::ModelCell;
pub use engine::LiveEngine;
pub use event::{
    decode_log, decode_log_lossy, encode_event, encode_log_header, LogHeader, UpdateEvent,
    LOG_HEADER_LEN, MAX_EVENT_FOLD_STEPS,
};
pub use queue::{AppliedUpdate, LiveConfig, LiveHandle};
pub use state::{replay, Applied, LiveState};
pub use stats::{LiveStats, LiveStatsSnapshot};

use taxrec_taxonomy::TaxonomyError;

/// Errors from the live subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// An `AddItem` event named an invalid parent (unknown node or a
    /// frozen leaf).
    Taxonomy(TaxonomyError),
    /// A `FoldInUser` event referenced an item id outside the catalog
    /// as of the event's application point.
    UnknownItem(u32),
    /// A `RefoldUser` event named a user id that is not a folded-in
    /// user (trained users are frozen; ids past the model are unknown).
    UnknownUser(usize),
    /// A `FoldInUser` event asked for more BPR steps than
    /// [`MAX_EVENT_FOLD_STEPS`]. Rejected *before* logging: the log
    /// codec refuses such records at decode time, so accepting one
    /// here would produce an acked event that replay cannot read.
    FoldStepsTooLarge(usize),
    /// The applier thread is gone (shutdown or panic); the update was
    /// not applied.
    QueueClosed,
    /// Event-log or snapshot I/O failed.
    Io(String),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Taxonomy(e) => write!(f, "add-item: {e}"),
            LiveError::UnknownItem(i) => write!(f, "fold-in history references unknown item {i}"),
            LiveError::UnknownUser(u) => {
                write!(f, "refold references unknown or non-folded user {u}")
            }
            LiveError::FoldStepsTooLarge(s) => write!(
                f,
                "fold-in steps {s} exceeds cap {}",
                event::MAX_EVENT_FOLD_STEPS
            ),
            LiveError::QueueClosed => write!(f, "live update queue is closed"),
            LiveError::Io(m) => write!(f, "live I/O: {m}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<TaxonomyError> for LiveError {
    fn from(e: TaxonomyError) -> Self {
        LiveError::Taxonomy(e)
    }
}
