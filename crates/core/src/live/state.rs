//! The authoritative mutable live state and its deterministic event
//! application — shared verbatim by the online applier thread and the
//! offline `taxrec replay` path, which is what makes
//! `snapshot + replay(log) ≡ live state` a theorem instead of a hope.

use super::event::UpdateEvent;
use super::LiveError;
use crate::dynamic::fold_in_user;
use crate::model::TfModel;
use crate::scoring::Scorer;
use crate::tier::FoldRecipe;
use std::sync::Arc;
use taxrec_dataset::Transaction;
use taxrec_taxonomy::{ItemId, NodeId};

/// What one applied event produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// An `AddItem` event: the new item id and its taxonomy node.
    ItemAdded {
        /// Dense id of the new item.
        item: ItemId,
        /// The new leaf node carrying the item.
        node: NodeId,
    },
    /// A `FoldInUser` event: the new user id.
    UserFolded {
        /// Row of the folded-in user in the grown user matrix.
        user: usize,
    },
    /// A `RefoldUser` event: the user whose factor and history were
    /// replaced in place.
    UserRefolded {
        /// Row of the re-folded user.
        user: usize,
    },
}

/// The live model plus the side state serving needs: which users are
/// folded-in (vs trained) and their histories.
///
/// Mutated only by one owner at a time (the applier thread online, the
/// replay loop offline); readers see immutable [`super::LiveEngine`]
/// snapshots derived from it.
#[derive(Debug, Clone)]
pub struct LiveState {
    model: TfModel,
    /// Histories of folded-in users, indexed by `user - base_users`.
    /// `Arc` so snapshots share them by pointer.
    histories: Vec<Arc<[Transaction]>>,
    /// Users the model was trained with; ids at or above this are
    /// folded-in live.
    base_users: usize,
    /// Items the model was trained with; ids at or above this were
    /// added live.
    base_items: usize,
    events_applied: u64,
}

impl LiveState {
    /// Wrap a freshly trained (or snapshot-decoded) model: every current
    /// user/item counts as "base".
    pub fn new(model: TfModel) -> LiveState {
        let base_users = model.num_users();
        let base_items = model.num_items();
        LiveState {
            model,
            histories: Vec::new(),
            base_users,
            base_items,
            events_applied: 0,
        }
    }

    /// Reconstruct a state whose folded users are already present in
    /// `model` (the snapshot-decode path). `histories.len()` must equal
    /// `model.num_users() - base_users`.
    pub(crate) fn from_parts(
        model: TfModel,
        base_users: usize,
        base_items: usize,
        histories: Vec<Arc<[Transaction]>>,
    ) -> LiveState {
        assert_eq!(
            model.num_users(),
            base_users + histories.len(),
            "histories must cover exactly the folded users"
        );
        LiveState {
            model,
            histories,
            base_users,
            base_items,
            events_applied: 0,
        }
    }

    /// The current model.
    pub fn model(&self) -> &TfModel {
        &self.model
    }

    /// Move the model's user factors into a shared hot/cold tier (see
    /// [`crate::tier::UserTier`]). Serve startup calls this once, before
    /// the first publish; all later fold-ins/refolds write the tier.
    pub fn attach_user_tier(&mut self, tier: Arc<crate::tier::UserTier>) {
        self.model.attach_user_tier(tier);
    }

    /// Users the model was trained with (smaller ids are trained users).
    pub fn base_users(&self) -> usize {
        self.base_users
    }

    /// Items the model was trained with (larger ids were added live).
    pub fn base_items(&self) -> usize {
        self.base_items
    }

    /// Events applied to this state since construction.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// History of a folded-in user (`None` for trained users or
    /// out-of-range ids).
    pub fn folded_history(&self, user: usize) -> Option<&[Transaction]> {
        user.checked_sub(self.base_users)
            .and_then(|i| self.histories.get(i))
            .map(|h| &**h)
    }

    /// Shared handles to all folded histories, in user-id order.
    pub(crate) fn histories(&self) -> &[Arc<[Transaction]>] {
        &self.histories
    }

    /// Check whether `ev` would apply cleanly, without mutating
    /// anything. The applier validates *before* appending to the WAL so
    /// a durably-logged event is always an applicable one; mirrors
    /// exactly the failure cases of [`apply`](Self::apply).
    pub fn validate(&self, ev: &UpdateEvent) -> Result<(), LiveError> {
        match ev {
            UpdateEvent::AddItem { parent } => {
                let tax = self.model.taxonomy();
                if parent.index() >= tax.num_nodes() {
                    return Err(taxrec_taxonomy::TaxonomyError::UnknownNode(*parent).into());
                }
                if tax.is_leaf(*parent) && *parent != NodeId::ROOT {
                    return Err(taxrec_taxonomy::TaxonomyError::FrozenNode(*parent).into());
                }
                Ok(())
            }
            UpdateEvent::FoldInUser { history, steps, .. } => {
                if *steps > super::event::MAX_EVENT_FOLD_STEPS {
                    return Err(LiveError::FoldStepsTooLarge(*steps));
                }
                let n_items = self.model.num_items();
                match history.iter().flatten().find(|i| i.index() >= n_items) {
                    Some(bad) => Err(LiveError::UnknownItem(bad.0)),
                    None => Ok(()),
                }
            }
            UpdateEvent::RefoldUser {
                user,
                history,
                steps,
                ..
            } => {
                if *steps > super::event::MAX_EVENT_FOLD_STEPS {
                    return Err(LiveError::FoldStepsTooLarge(*steps));
                }
                if *user < self.base_users || *user >= self.model.num_users() {
                    return Err(LiveError::UnknownUser(*user));
                }
                let n_items = self.model.num_items();
                match history.iter().flatten().find(|i| i.index() >= n_items) {
                    Some(bad) => Err(LiveError::UnknownItem(bad.0)),
                    None => Ok(()),
                }
            }
        }
    }

    /// Apply one event. Deterministic: the same event on the same state
    /// always yields the bit-identical successor. On error the state is
    /// unchanged.
    pub fn apply(&mut self, ev: &UpdateEvent) -> Result<Applied, LiveError> {
        let applied = match ev {
            UpdateEvent::AddItem { parent } => {
                let item = self.model.add_item_mut(*parent)?;
                Applied::ItemAdded {
                    item,
                    node: self.model.taxonomy().item_node(item),
                }
            }
            UpdateEvent::FoldInUser {
                history,
                steps,
                seed,
            } => {
                if *steps > super::event::MAX_EVENT_FOLD_STEPS {
                    return Err(LiveError::FoldStepsTooLarge(*steps));
                }
                let n_items = self.model.num_items();
                if let Some(bad) = history.iter().flatten().find(|i| i.index() >= n_items) {
                    return Err(LiveError::UnknownItem(bad.0));
                }
                // Fold against the *current* frozen factors. Building a
                // scorer here is O(nodes × K) per fold-in; acceptable for
                // the applier's batch cadence, and required for replay
                // determinism (the factor depends on every item added
                // before this event).
                let factor = {
                    let scorer = Scorer::new(&self.model);
                    fold_in_user(&scorer, history, *steps, *seed)
                };
                let hist: Arc<[Transaction]> = Arc::from(history.as_slice());
                let recipe = FoldRecipe {
                    history: Arc::clone(&hist),
                    steps: *steps,
                    seed: *seed,
                    n_items,
                };
                let user = self.model.push_user_with_recipe(&factor, recipe);
                self.histories.push(hist);
                Applied::UserFolded { user }
            }
            UpdateEvent::RefoldUser {
                user,
                history,
                steps,
                seed,
            } => {
                if *steps > super::event::MAX_EVENT_FOLD_STEPS {
                    return Err(LiveError::FoldStepsTooLarge(*steps));
                }
                if *user < self.base_users || *user >= self.model.num_users() {
                    return Err(LiveError::UnknownUser(*user));
                }
                let n_items = self.model.num_items();
                if let Some(bad) = history.iter().flatten().find(|i| i.index() >= n_items) {
                    return Err(LiveError::UnknownItem(bad.0));
                }
                // Re-fold **from scratch** at the current catalog: v_u
                // restarts at the prior mean and `history` replaces the
                // stored baskets outright, so a user who was evicted,
                // faulted back, and folded again never double-counts
                // earlier purchases.
                let factor = {
                    let scorer = Scorer::new(&self.model);
                    fold_in_user(&scorer, history, *steps, *seed)
                };
                let hist: Arc<[Transaction]> = Arc::from(history.as_slice());
                let recipe = FoldRecipe {
                    history: Arc::clone(&hist),
                    steps: *steps,
                    seed: *seed,
                    n_items,
                };
                self.model.set_user_factor(*user, &factor, recipe);
                self.histories[*user - self.base_users] = hist;
                Applied::UserRefolded { user: *user }
            }
        };
        self.events_applied += 1;
        Ok(applied)
    }
}

/// Apply `events` in order (the recovery path: decode a snapshot, then
/// `replay` its event log). Returns what each event produced.
///
/// Fails on the first invalid event, leaving `state` with every prior
/// event applied — mirroring exactly what the online applier would have
/// accepted.
pub fn replay(state: &mut LiveState, events: &[UpdateEvent]) -> Result<Vec<Applied>, LiveError> {
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        out.push(state.apply(ev)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};

    fn state() -> (SyntheticDataset, LiveState) {
        let d = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(200), 17);
        let m = crate::train::TfTrainer::new(
            ModelConfig::tf(4, 1).with_factors(8).with_epochs(2),
            &d.taxonomy,
        )
        .fit(&d.train, 1);
        let s = LiveState::new(m);
        (d, s)
    }

    fn parent_of(s: &LiveState, item: u32) -> NodeId {
        let tax = s.model().taxonomy();
        tax.parent(tax.item_node(ItemId(item))).unwrap()
    }

    #[test]
    fn add_item_grows_catalog() {
        let (_, mut s) = state();
        let before = s.model().num_items();
        let parent = parent_of(&s, 0);
        let got = s.apply(&UpdateEvent::AddItem { parent }).unwrap();
        assert_eq!(s.model().num_items(), before + 1);
        assert!(matches!(got, Applied::ItemAdded { item, .. } if item.index() == before));
        assert_eq!(s.base_items(), before);
        assert_eq!(s.events_applied(), 1);
    }

    #[test]
    fn fold_in_grows_users_and_keeps_history() {
        let (d, mut s) = state();
        let before = s.model().num_users();
        let history = d.train.user(3).to_vec();
        let got = s
            .apply(&UpdateEvent::FoldInUser {
                history: history.clone(),
                steps: 50,
                seed: 5,
            })
            .unwrap();
        assert_eq!(got, Applied::UserFolded { user: before });
        assert_eq!(s.model().num_users(), before + 1);
        assert_eq!(s.folded_history(before).unwrap(), history.as_slice());
        assert!(s.folded_history(0).is_none());
        assert!(s.folded_history(before + 1).is_none());
    }

    #[test]
    fn validate_mirrors_apply_exactly() {
        let (d, s) = state();
        let good = [
            UpdateEvent::AddItem {
                parent: parent_of(&s, 0),
            },
            UpdateEvent::FoldInUser {
                history: d.train.user(1).to_vec(),
                steps: 10,
                seed: 0,
            },
        ];
        let bad = [
            UpdateEvent::AddItem {
                parent: s.model().taxonomy().item_node(ItemId(0)),
            },
            UpdateEvent::AddItem {
                parent: NodeId(u32::MAX),
            },
            UpdateEvent::FoldInUser {
                history: vec![vec![ItemId(u32::MAX)]],
                steps: 10,
                seed: 0,
            },
            // Steps past the log codec's decode cap must be rejected
            // here too, or an acked event would be unreplayable.
            UpdateEvent::FoldInUser {
                history: vec![vec![ItemId(0)]],
                steps: crate::live::MAX_EVENT_FOLD_STEPS + 1,
                seed: 0,
            },
            // Refolding a trained user, an out-of-range user, an
            // unknown item, or with absurd steps must all bounce.
            UpdateEvent::RefoldUser {
                user: 0,
                history: vec![vec![ItemId(0)]],
                steps: 10,
                seed: 0,
            },
            UpdateEvent::RefoldUser {
                user: 10_000,
                history: vec![vec![ItemId(0)]],
                steps: 10,
                seed: 0,
            },
            UpdateEvent::RefoldUser {
                user: 0,
                history: vec![vec![ItemId(u32::MAX)]],
                steps: 10,
                seed: 0,
            },
            UpdateEvent::RefoldUser {
                user: 0,
                history: vec![vec![ItemId(0)]],
                steps: crate::live::MAX_EVENT_FOLD_STEPS + 1,
                seed: 0,
            },
        ];
        for ev in good.iter().chain(&bad) {
            let verdict = s.validate(ev);
            let outcome = s.clone().apply(ev).map(|_| ());
            assert_eq!(verdict, outcome, "{ev:?}");
        }
    }

    #[test]
    fn errors_leave_state_unchanged() {
        let (_, mut s) = state();
        let snapshot = s.clone();
        let leaf = s.model().taxonomy().item_node(ItemId(0));
        assert!(s.apply(&UpdateEvent::AddItem { parent: leaf }).is_err());
        let bad = UpdateEvent::FoldInUser {
            history: vec![vec![ItemId(9_999_999)]],
            steps: 10,
            seed: 1,
        };
        assert_eq!(s.apply(&bad), Err(LiveError::UnknownItem(9_999_999)));
        assert_eq!(s.model().num_items(), snapshot.model().num_items());
        assert_eq!(s.model().num_users(), snapshot.model().num_users());
        assert_eq!(s.events_applied(), 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let (d, s0) = state();
        let parent = parent_of(&s0, 4);
        let events = vec![
            UpdateEvent::AddItem { parent },
            UpdateEvent::FoldInUser {
                history: d.train.user(7).to_vec(),
                steps: 120,
                seed: 99,
            },
            UpdateEvent::AddItem { parent },
        ];
        let mut a = s0.clone();
        let mut b = s0.clone();
        replay(&mut a, &events).unwrap();
        replay(&mut b, &events).unwrap();
        assert_eq!(a.model().user_factors, b.model().user_factors);
        assert_eq!(a.model().node_factors, b.model().node_factors);
        assert_eq!(a.model().next_factors, b.model().next_factors);
    }

    #[test]
    fn refold_replaces_factor_and_history_without_double_counting() {
        let (d, mut s) = state();
        let hist_a = d.train.user(3).to_vec();
        let hist_b = d.train.user(8).to_vec();
        let base = s.model().num_users();
        s.apply(&UpdateEvent::FoldInUser {
            history: hist_a,
            steps: 60,
            seed: 5,
        })
        .unwrap();
        // Refold the same user with a different full history.
        let got = s
            .apply(&UpdateEvent::RefoldUser {
                user: base,
                history: hist_b.clone(),
                steps: 60,
                seed: 5,
            })
            .unwrap();
        assert_eq!(got, Applied::UserRefolded { user: base });
        assert_eq!(s.model().num_users(), base + 1, "refold must not append");
        assert_eq!(s.folded_history(base).unwrap(), hist_b.as_slice());
        // No double-counting: the refolded factor equals a fresh fold of
        // hist_b alone on the same catalog — the prior fold left no residue.
        let fresh = {
            let scorer = Scorer::new(s.model());
            fold_in_user(&scorer, &hist_b, 60, 5)
        };
        assert_eq!(s.model().user_factor(base), fresh.as_slice());
    }

    #[test]
    fn refold_rejects_trained_and_unknown_users() {
        let (d, mut s) = state();
        let hist = d.train.user(1).to_vec();
        let ev = |user| UpdateEvent::RefoldUser {
            user,
            history: hist.clone(),
            steps: 10,
            seed: 1,
        };
        assert_eq!(s.apply(&ev(0)), Err(LiveError::UnknownUser(0)));
        let past = s.model().num_users();
        assert_eq!(s.apply(&ev(past)), Err(LiveError::UnknownUser(past)));
        assert_eq!(s.events_applied(), 0);
    }

    #[test]
    fn fold_in_after_add_item_sees_grown_catalog() {
        // The folded factor depends on the catalog size at application
        // time (negative sampling) — the reason replay must preserve
        // event order.
        let (d, s0) = state();
        let parent = parent_of(&s0, 4);
        let fold = UpdateEvent::FoldInUser {
            history: d.train.user(2).to_vec(),
            steps: 200,
            seed: 3,
        };
        let mut with_add = s0.clone();
        with_add.apply(&UpdateEvent::AddItem { parent }).unwrap();
        with_add.apply(&fold).unwrap();
        let mut without_add = s0.clone();
        without_add.apply(&fold).unwrap();
        let u1 = with_add.model().num_users() - 1;
        let u2 = without_add.model().num_users() - 1;
        assert_ne!(
            with_add.model().user_factor(u1),
            without_add.model().user_factor(u2),
            "catalog growth must influence later fold-ins"
        );
    }
}
