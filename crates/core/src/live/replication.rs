//! WAL shipping: leader → follower replication over TCP.
//!
//! The durable event log already carries everything a replica needs —
//! a lineage-stamped header and a deterministic, replayable record
//! stream — so replication is literally shipping committed WAL records
//! over a socket. The leader retains every record it has committed
//! since process start in a [`ReplicationHub`]; each follower
//! connection handshakes with the shape of its current model, which
//! (because every applied event grows `users + items` by exactly one)
//! fully determines its offset into the leader's stream. The leader
//! validates that the shape recorded at that offset matches
//! bit-for-bit, then streams the tail and keeps tailing live commits.
//!
//! Protocol (all integers little-endian, `TFR1` magic):
//!
//! ```text
//! follower → leader  hello:  u32 magic, u8 version, u8 mode,
//!                            u64 users, u64 items
//! leader → follower  reply:  u8 status, u64 base_users, u64 base_items,
//!                            u64 committed, u64 resume_from,
//!                            u32 len, len bytes of UTF-8 message
//! leader → follower  frames: u8 tag,
//!                            tag 1 (record):    u64 seq, u64 committed,
//!                                               WAL record bytes
//!                                               (u32 len + payload)
//!                            tag 2 (heartbeat): u64 committed
//! ```
//!
//! `mode` is 0 for a streaming follower, 1 for a probe (handshake
//! only; the leader replies and closes). `seq` is 1-based: record
//! `seq` is the `seq`-th event committed since the leader's stream
//! base. A record frame embeds the exact bytes the leader appended to
//! its WAL, so the framing round-trips bit-for-bit and the follower's
//! apply is the same code path as local replay.
//!
//! Commit discipline: the applier publishes records into the hub only
//! **after** the WAL flush succeeded and the batch was published to
//! readers. An event nacked by a WAL failure is never shipped, and a
//! degraded (read-only) leader stops committing new offsets entirely —
//! followers idle at the last good offset.

use super::event::{decode_payload, LogHeader};
use super::queue::LiveHandle;
use super::{LiveError, UpdateEvent};
use crate::obs::{Counter, Gauge, MetricsRegistry};
use crate::persist::bytes_shim::{get_u32, get_u64, put_u32, put_u64};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Replication protocol magic: `"TFR1"`.
pub const REPL_MAGIC: u32 = 0x5446_5231;
/// Replication protocol version.
pub const REPL_VERSION: u8 = 1;

/// Largest record payload a peer will accept (a fold-in history is
/// bounded by `MAX_EVENT_FOLD_STEPS` baskets, far below this); guards
/// against hostile or corrupt length prefixes allocating unbounded
/// memory.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// How long an idle leader connection waits for new commits before
/// emitting a heartbeat frame (which also refreshes the follower's
/// `leader_committed` gauge).
const HEARTBEAT_EVERY: Duration = Duration::from_millis(500);
/// Socket read/write deadline on both sides; with heartbeats every
/// 500 ms, silence this long means the peer is gone.
const SOCKET_DEADLINE: Duration = Duration::from_secs(10);
/// First reconnect delay of the follower's exponential backoff.
const BACKOFF_START: Duration = Duration::from_millis(100);
/// Reconnect backoff cap.
const BACKOFF_CAP: Duration = Duration::from_secs(5);
/// Most records coalesced into one socket write.
const SHIP_BATCH: usize = 256;

/// Why a leader refused a handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The follower's state does not lie on this leader's stream: its
    /// lineage (base model or event history) differs, so streaming
    /// would silently diverge.
    LineageMismatch,
    /// The follower's state predates this leader's retained stream
    /// base; it must re-bootstrap from the leader's latest snapshot.
    BehindRetention,
}

impl RejectReason {
    fn code(self) -> u8 {
        match self {
            RejectReason::LineageMismatch => 1,
            RejectReason::BehindRetention => 2,
        }
    }
    fn from_code(code: u8) -> Option<RejectReason> {
        match code {
            1 => Some(RejectReason::LineageMismatch),
            2 => Some(RejectReason::BehindRetention),
            _ => None,
        }
    }
}

/// A successful handshake, as seen by the follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeOk {
    /// Lineage of the leader's stream base (shape at leader start).
    pub base: LogHeader,
    /// Records the leader had committed at handshake time.
    pub committed: u64,
    /// Offset streaming resumes from — the follower's own offset, as
    /// derived from the shape it sent.
    pub resume_from: u64,
}

/// One frame of the post-handshake stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A committed WAL record: 1-based sequence number, the leader's
    /// committed high-water mark, and the decoded event.
    Record {
        /// 1-based position of this record in the leader's stream.
        seq: u64,
        /// Leader's committed record count when the frame was sent.
        committed: u64,
        /// The shipped event, decoded from the exact WAL bytes.
        event: UpdateEvent,
    },
    /// Liveness + lag refresh while no records are flowing.
    Heartbeat {
        /// Leader's committed record count when the frame was sent.
        committed: u64,
    },
}

/// Encode a record frame around already-encoded WAL record bytes
/// (`u32 len + payload`, exactly as appended to the log).
pub fn encode_record_frame(out: &mut Vec<u8>, seq: u64, committed: u64, record_bytes: &[u8]) {
    out.push(1);
    put_u64(out, seq);
    put_u64(out, committed);
    out.extend_from_slice(record_bytes);
}

/// Encode a heartbeat frame.
pub fn encode_heartbeat_frame(out: &mut Vec<u8>, committed: u64) {
    out.push(2);
    put_u64(out, committed);
}

/// Read one frame from the stream. Returns `Err` on EOF, socket
/// timeout, or a malformed frame — all of which the follower treats as
/// "reconnect and re-handshake".
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let tag = read_n::<1>(r)?[0];
    match tag {
        1 => {
            let seq = u64::from_le_bytes(read_n::<8>(r)?);
            let committed = u64::from_le_bytes(read_n::<8>(r)?);
            let len = u32::from_le_bytes(read_n::<4>(r)?) as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(bad_data(format!("record frame payload of {len} bytes")));
            }
            let mut payload = vec![0u8; len];
            r.read_exact(&mut payload)?;
            let event = decode_payload(&payload)
                .map_err(|e| bad_data(format!("undecodable record frame: {e}")))?;
            Ok(Frame::Record {
                seq,
                committed,
                event,
            })
        }
        2 => Ok(Frame::Heartbeat {
            committed: u64::from_le_bytes(read_n::<8>(r)?),
        }),
        t => Err(bad_data(format!("unknown replication frame tag {t}"))),
    }
}

fn read_n<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn encode_hello(out: &mut Vec<u8>, probe: bool, users: u64, items: u64) {
    put_u32(out, REPL_MAGIC);
    out.push(REPL_VERSION);
    out.push(u8::from(probe));
    put_u64(out, users);
    put_u64(out, items);
}

struct Hello {
    probe: bool,
    users: u64,
    items: u64,
}

fn read_hello(r: &mut impl Read) -> io::Result<Hello> {
    let mut buf = [0u8; 22];
    r.read_exact(&mut buf)?;
    let mut pos = 0usize;
    let magic = get_u32(&buf, &mut pos).map_err(|e| bad_data(e.to_string()))?;
    if magic != REPL_MAGIC {
        return Err(bad_data(format!("bad replication magic {magic:#x}")));
    }
    let version = buf[pos];
    pos += 1;
    if version != REPL_VERSION {
        return Err(bad_data(format!(
            "unsupported replication version {version}"
        )));
    }
    let mode = buf[pos];
    pos += 1;
    let users = get_u64(&buf, &mut pos).map_err(|e| bad_data(e.to_string()))?;
    let items = get_u64(&buf, &mut pos).map_err(|e| bad_data(e.to_string()))?;
    Ok(Hello {
        probe: mode == 1,
        users,
        items,
    })
}

fn encode_reply(
    out: &mut Vec<u8>,
    status: u8,
    base: &LogHeader,
    committed: u64,
    resume_from: u64,
    msg: &str,
) {
    out.push(status);
    put_u64(out, base.base_users);
    put_u64(out, base.base_items);
    put_u64(out, committed);
    put_u64(out, resume_from);
    put_u32(out, msg.len() as u32);
    out.extend_from_slice(msg.as_bytes());
}

fn read_reply(r: &mut impl Read) -> io::Result<Result<HandshakeOk, (RejectReason, String)>> {
    let status = read_n::<1>(r)?[0];
    let base_users = u64::from_le_bytes(read_n::<8>(r)?);
    let base_items = u64::from_le_bytes(read_n::<8>(r)?);
    let committed = u64::from_le_bytes(read_n::<8>(r)?);
    let resume_from = u64::from_le_bytes(read_n::<8>(r)?);
    let len = u32::from_le_bytes(read_n::<4>(r)?) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(bad_data(format!("handshake message of {len} bytes")));
    }
    let mut msg = vec![0u8; len];
    r.read_exact(&mut msg)?;
    let msg = String::from_utf8_lossy(&msg).into_owned();
    if status == 0 {
        return Ok(Ok(HandshakeOk {
            base: LogHeader {
                base_users,
                base_items,
            },
            committed,
            resume_from,
        }));
    }
    let reason = RejectReason::from_code(status)
        .ok_or_else(|| bad_data(format!("unknown handshake status {status}")))?;
    Ok(Err((reason, msg)))
}

/// Leader-side replication metrics, registered into the shared
/// [`MetricsRegistry`] and surfaced through `/live/stats` + `/metrics`.
#[derive(Debug)]
pub struct LeaderReplStats {
    committed: Gauge,
    followers: Gauge,
    records_shipped: Counter,
    handshakes_rejected: Counter,
}

impl LeaderReplStats {
    fn new(registry: &MetricsRegistry) -> LeaderReplStats {
        LeaderReplStats {
            committed: registry.gauge(
                "taxrec_replication_committed",
                "WAL records committed to the replication stream since leader start",
                &[],
            ),
            followers: registry.gauge(
                "taxrec_replication_followers",
                "Follower connections currently streaming",
                &[],
            ),
            records_shipped: registry.counter(
                "taxrec_replication_records_shipped_total",
                "WAL records shipped to followers (summed over connections)",
                &[],
            ),
            handshakes_rejected: registry.counter(
                "taxrec_replication_handshakes_rejected_total",
                "Follower handshakes refused (lineage mismatch / behind retention)",
                &[],
            ),
        }
    }

    /// Records committed to the stream since leader start.
    pub fn committed(&self) -> u64 {
        self.committed.get()
    }
    /// Follower connections currently streaming.
    pub fn followers(&self) -> u64 {
        self.followers.get()
    }
    /// Records shipped to followers, summed over all connections.
    pub fn records_shipped(&self) -> u64 {
        self.records_shipped.get()
    }
    /// Handshakes refused.
    pub fn handshakes_rejected(&self) -> u64 {
        self.handshakes_rejected.get()
    }
}

/// One committed record retained for shipping: the exact WAL bytes and
/// the model shape immediately **after** applying it (which is what a
/// follower that has applied through this record will present at
/// re-handshake).
struct Retained {
    record_bytes: Arc<[u8]>,
    users: u64,
    items: u64,
}

struct HubInner {
    records: Vec<Retained>,
    closed: bool,
}

/// The leader's committed-record buffer, shared between the applier
/// (producer) and follower connections (consumers).
///
/// Retention is process-lifetime: every record committed since the
/// leader started is kept (records are a few hundred bytes; the model
/// they grow dwarfs them), so any follower whose state lies on this
/// stream — including one that bootstrapped from the leader's startup
/// snapshot and caught up from its own local WAL — can resume.
///
/// Offset resolution leans on an invariant of the event model: every
/// event grows `users + items` by exactly one, so a follower's shape
/// sum minus the stream base's shape sum *is* its offset, and the
/// shape recorded per retained record verifies the match exactly
/// (an idempotent re-handshake cannot skip or double-apply).
pub struct ReplicationHub {
    base: LogHeader,
    committed: AtomicU64,
    inner: Mutex<HubInner>,
    more: Condvar,
    stats: LeaderReplStats,
}

impl std::fmt::Debug for ReplicationHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationHub")
            .field("base", &self.base)
            .field("committed", &self.committed())
            .finish_non_exhaustive()
    }
}

impl ReplicationHub {
    /// A hub whose stream base is the given lineage (the leader's model
    /// shape at applier start), registering leader-side metrics into
    /// `registry`.
    pub fn new(base: LogHeader, registry: &MetricsRegistry) -> ReplicationHub {
        ReplicationHub {
            base,
            committed: AtomicU64::new(0),
            inner: Mutex::new(HubInner {
                records: Vec::new(),
                closed: false,
            }),
            more: Condvar::new(),
            stats: LeaderReplStats::new(registry),
        }
    }

    /// Lineage of the stream base.
    pub fn base(&self) -> LogHeader {
        self.base
    }

    /// Records committed since leader start (the follower-visible
    /// high-water mark).
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Leader-side metrics.
    pub fn stats(&self) -> &LeaderReplStats {
        &self.stats
    }

    /// Append a batch of committed records. Called by the applier only
    /// after the WAL flush succeeded and the batch was published —
    /// never with nacked events. Each entry is the record's exact WAL
    /// bytes plus the model shape after applying it.
    pub fn commit(&self, batch: Vec<(Vec<u8>, u64, u64)>) {
        if batch.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for (bytes, users, items) in batch {
            inner.records.push(Retained {
                record_bytes: bytes.into(),
                users,
                items,
            });
        }
        let committed = inner.records.len() as u64;
        drop(inner);
        self.committed.store(committed, Ordering::Release);
        self.stats.committed.set(committed);
        self.more.notify_all();
    }

    /// Stop the stream: wake every waiting connection so it can wind
    /// down. Idempotent. Called when the leader shuts down.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.more.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Resolve a follower's presented shape to its stream offset, or
    /// refuse with a structured reason.
    pub fn resolve_offset(&self, users: u64, items: u64) -> Result<u64, (RejectReason, String)> {
        let base_sum = self.base.base_users + self.base.base_items;
        let want_sum = users + items;
        if want_sum < base_sum {
            return Err((
                RejectReason::BehindRetention,
                format!(
                    "follower state ({users} users, {items} items) predates this leader's \
                     stream base ({} users, {} items); bootstrap the follower from the \
                     leader's latest snapshot + log",
                    self.base.base_users, self.base.base_items
                ),
            ));
        }
        let offset = want_sum - base_sum;
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let committed = inner.records.len() as u64;
        if offset > committed {
            return Err((
                RejectReason::LineageMismatch,
                format!(
                    "follower state ({users} users, {items} items) is ahead of this \
                     leader's committed stream ({committed} records past {} users, \
                     {} items): different lineage",
                    self.base.base_users, self.base.base_items
                ),
            ));
        }
        let (expect_users, expect_items) = if offset == 0 {
            (self.base.base_users, self.base.base_items)
        } else {
            let r = &inner.records[offset as usize - 1];
            (r.users, r.items)
        };
        if (users, items) != (expect_users, expect_items) {
            return Err((
                RejectReason::LineageMismatch,
                format!(
                    "follower state ({users} users, {items} items) does not match this \
                     leader's stream at offset {offset} ({expect_users} users, \
                     {expect_items} items): different base model or event history"
                ),
            ));
        }
        Ok(offset)
    }

    /// Up to `cap` retained records starting at 0-based offset `from`,
    /// as `(seq, bytes)` with 1-based `seq = offset + 1`.
    fn records_from(&self, from: u64, cap: usize) -> Vec<(u64, Arc<[u8]>)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .records
            .iter()
            .enumerate()
            .skip(from as usize)
            .take(cap)
            .map(|(i, r)| (i as u64 + 1, Arc::clone(&r.record_bytes)))
            .collect()
    }

    /// Block until more than `seen` records are committed, the hub is
    /// closed, or `timeout` elapses. Returns `(committed, closed)`.
    fn wait_more(&self, seen: u64, timeout: Duration) -> (u64, bool) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let committed = inner.records.len() as u64;
            if committed > seen || inner.closed {
                return (committed, inner.closed);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return (committed, inner.closed);
            }
            let (guard, _) = self
                .more
                .wait_timeout(inner, left)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }
}

/// Serve one follower connection on the leader: handshake, stream the
/// retained tail, then tail live commits (heartbeating while idle)
/// until the socket drops or the hub closes. Returns on any error —
/// the follower reconnects and re-handshakes.
pub fn serve_follower(mut stream: TcpStream, hub: &ReplicationHub) {
    let _ = stream.set_read_timeout(Some(SOCKET_DEADLINE));
    let _ = stream.set_write_timeout(Some(SOCKET_DEADLINE));
    let _ = stream.set_nodelay(true);
    let Ok(hello) = read_hello(&mut stream) else {
        return;
    };
    let mut reply = Vec::new();
    let resume_from = match hub.resolve_offset(hello.users, hello.items) {
        Ok(offset) => {
            encode_reply(&mut reply, 0, &hub.base(), hub.committed(), offset, "");
            offset
        }
        Err((reason, msg)) => {
            hub.stats.handshakes_rejected.inc();
            encode_reply(
                &mut reply,
                reason.code(),
                &hub.base(),
                hub.committed(),
                0,
                &msg,
            );
            let _ = stream.write_all(&reply);
            return;
        }
    };
    if stream.write_all(&reply).is_err() || hello.probe {
        return;
    }

    hub.stats.followers.inc();
    let mut next = resume_from; // 0-based offset of the next record to ship
    let mut buf = Vec::new();
    loop {
        let batch = hub.records_from(next, SHIP_BATCH);
        if batch.is_empty() {
            let (committed, closed) = hub.wait_more(next, HEARTBEAT_EVERY);
            if closed {
                break;
            }
            if committed == next {
                buf.clear();
                encode_heartbeat_frame(&mut buf, committed);
                if stream.write_all(&buf).is_err() {
                    break;
                }
            }
            continue;
        }
        let committed = hub.committed();
        buf.clear();
        let shipped = batch.len() as u64;
        for (seq, bytes) in batch {
            encode_record_frame(&mut buf, seq, committed, &bytes);
            next = seq;
        }
        if stream.write_all(&buf).is_err() {
            break;
        }
        hub.stats.records_shipped.add(shipped);
    }
    hub.stats.followers.dec();
}

/// The leader's replication listener: an accept loop that serves each
/// follower connection on its own thread. Dropping the handle closes
/// the hub and joins the accept loop.
#[derive(Debug)]
pub struct ReplicationListener {
    addr: SocketAddr,
    hub: Arc<ReplicationHub>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ReplicationListener {
    /// Start serving `hub` on an already-bound listener.
    pub fn spawn(
        listener: TcpListener,
        hub: Arc<ReplicationHub>,
    ) -> Result<ReplicationListener, LiveError> {
        let addr = listener
            .local_addr()
            .map_err(|e| LiveError::Io(format!("replication listener: {e}")))?;
        let accept_hub = Arc::clone(&hub);
        let accept_thread = std::thread::Builder::new()
            .name("taxrec-repl-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_hub.is_closed() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_hub = Arc::clone(&accept_hub);
                    let _ = std::thread::Builder::new()
                        .name("taxrec-repl-conn".into())
                        .spawn(move || serve_follower(stream, &conn_hub));
                }
            })
            .map_err(|e| LiveError::Io(format!("spawning replication accept loop: {e}")))?;
        Ok(ReplicationListener {
            addr,
            hub,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address followers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ReplicationListener {
    fn drop(&mut self) {
        self.hub.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Follower-side replication metrics, registered into the shared
/// [`MetricsRegistry`].
#[derive(Debug)]
pub struct FollowerStats {
    lag: Gauge,
    leader_committed: Gauge,
    records_applied: Counter,
    reconnects: Counter,
}

impl FollowerStats {
    /// Register follower gauges/counters into `registry`.
    pub fn new(registry: &MetricsRegistry) -> FollowerStats {
        FollowerStats {
            lag: registry.gauge(
                "taxrec_replication_lag",
                "Leader committed offset minus follower applied offset",
                &[],
            ),
            leader_committed: registry.gauge(
                "taxrec_replication_leader_committed",
                "Leader committed offset as last heard over the stream",
                &[],
            ),
            records_applied: registry.counter(
                "taxrec_replication_records_applied_total",
                "Replicated records applied through the local publish path",
                &[],
            ),
            reconnects: registry.counter(
                "taxrec_replication_reconnects_total",
                "Times the follower re-dialed the leader",
                &[],
            ),
        }
    }

    fn observe(&self, committed: u64, applied: u64) {
        self.leader_committed.set(committed);
        self.lag.set(committed.saturating_sub(applied));
    }

    /// Leader committed minus locally applied, as last heard.
    pub fn lag(&self) -> u64 {
        self.lag.get()
    }
    /// Leader's committed offset as last heard.
    pub fn leader_committed(&self) -> u64 {
        self.leader_committed.get()
    }
    /// Replicated records applied locally.
    pub fn records_applied(&self) -> u64 {
        self.records_applied.get()
    }
    /// Reconnect attempts after the initial connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }
}

/// One-shot handshake against a leader: validates that this follower's
/// current shape lies on the leader's stream without starting to
/// stream. Used by `taxrec serve --follow` to fail fast on a lineage
/// mismatch at startup.
pub fn probe(addr: &str, users: u64, items: u64) -> Result<HandshakeOk, LiveError> {
    let io = |e: io::Error| LiveError::Io(format!("replication probe {addr}: {e}"));
    let mut stream = TcpStream::connect(addr).map_err(io)?;
    let _ = stream.set_read_timeout(Some(SOCKET_DEADLINE));
    let _ = stream.set_write_timeout(Some(SOCKET_DEADLINE));
    let mut hello = Vec::new();
    encode_hello(&mut hello, true, users, items);
    stream.write_all(&hello).map_err(io)?;
    match read_reply(&mut stream).map_err(io)? {
        Ok(ok) => Ok(ok),
        Err((reason, msg)) => Err(LiveError::Io(format!(
            "leader {addr} refused replication handshake ({reason:?}): {msg}"
        ))),
    }
}

/// Run the follower apply loop until `stop` is set: connect to the
/// leader, handshake with the current model shape, apply streamed
/// records through `handle` (the same validate → WAL → publish path
/// local writes take), and reconnect with exponential backoff on any
/// socket failure. Every reconnect re-handshakes from the follower's
/// **current** shape, so a record is never applied twice or skipped.
///
/// Fatal errors (the loop gives up and returns `Err`): a handshake
/// rejection (lineage mismatch / behind retention) and a local apply
/// failure — both mean this follower cannot converge without operator
/// action.
pub fn follow(
    addr: &str,
    handle: &LiveHandle,
    stats: &FollowerStats,
    stop: &AtomicBool,
) -> Result<(), LiveError> {
    let mut backoff = BACKOFF_START;
    let mut connected_once = false;
    while !stop.load(Ordering::Relaxed) {
        if connected_once {
            stats.reconnects.inc();
            sleep_unless_stopped(backoff, stop);
            backoff = (backoff * 2).min(BACKOFF_CAP);
            if stop.load(Ordering::Relaxed) {
                break;
            }
        }
        connected_once = true;
        let Ok(mut stream) = TcpStream::connect(addr) else {
            continue;
        };
        let _ = stream.set_read_timeout(Some(SOCKET_DEADLINE));
        let _ = stream.set_write_timeout(Some(SOCKET_DEADLINE));
        let _ = stream.set_nodelay(true);
        let snap = handle.cell().load();
        let (users, items) = (
            snap.model().num_users() as u64,
            snap.model().num_items() as u64,
        );
        drop(snap);
        let mut hello = Vec::new();
        encode_hello(&mut hello, false, users, items);
        if stream.write_all(&hello).is_err() {
            continue;
        }
        let mut applied = match read_reply(&mut stream) {
            Ok(Ok(ok)) => {
                stats.observe(ok.committed, ok.resume_from);
                ok.resume_from
            }
            Ok(Err((reason, msg))) => {
                return Err(LiveError::Io(format!(
                    "leader {addr} refused replication handshake ({reason:?}): {msg}"
                )));
            }
            Err(_) => continue,
        };
        backoff = BACKOFF_START;
        let mut reader = io::BufReader::new(stream);
        while !stop.load(Ordering::Relaxed) {
            match read_frame(&mut reader) {
                Ok(Frame::Heartbeat { committed }) => stats.observe(committed, applied),
                Ok(Frame::Record {
                    seq,
                    committed,
                    event,
                }) => {
                    if seq != applied + 1 {
                        // Desynced stream — drop the socket and
                        // re-handshake from our current shape.
                        break;
                    }
                    handle.submit(event).map_err(|e| {
                        LiveError::Io(format!("applying replicated record {seq} from {addr}: {e}"))
                    })?;
                    applied = seq;
                    stats.records_applied.inc();
                    stats.observe(committed.max(applied), applied);
                }
                Err(_) => break,
            }
        }
    }
    Ok(())
}

/// Sleep in small slices so a set `stop` flag cuts the backoff short.
fn sleep_unless_stopped(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(25);
    let deadline = std::time::Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            break;
        }
        std::thread::sleep(left.min(slice));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_with(base_users: u64, base_items: u64) -> ReplicationHub {
        ReplicationHub::new(
            LogHeader {
                base_users,
                base_items,
            },
            &MetricsRegistry::new(),
        )
    }

    fn record(bytes: &[u8], users: u64, items: u64) -> (Vec<u8>, u64, u64) {
        (bytes.to_vec(), users, items)
    }

    #[test]
    fn offset_resolution_follows_shape_sum() {
        let hub = hub_with(10, 5);
        assert_eq!(hub.resolve_offset(10, 5), Ok(0));
        hub.commit(vec![record(b"a", 10, 6), record(b"b", 11, 6)]);
        assert_eq!(hub.resolve_offset(10, 6), Ok(1));
        assert_eq!(hub.resolve_offset(11, 6), Ok(2));
        assert_eq!(hub.committed(), 2);
        assert_eq!(hub.stats().committed(), 2);
    }

    #[test]
    fn offset_resolution_rejects_wrong_lineage() {
        let hub = hub_with(10, 5);
        hub.commit(vec![record(b"a", 10, 6)]);
        // Same shape sum as offset 1, but the wrong split: a different
        // event history.
        let err = hub.resolve_offset(11, 5).unwrap_err();
        assert_eq!(err.0, RejectReason::LineageMismatch);
        // Ahead of everything this leader has committed.
        let err = hub.resolve_offset(14, 9).unwrap_err();
        assert_eq!(err.0, RejectReason::LineageMismatch);
        // Behind the stream base entirely.
        let err = hub.resolve_offset(9, 5).unwrap_err();
        assert_eq!(err.0, RejectReason::BehindRetention);
        // A base-shaped follower with the wrong split is also refused.
        let err = hub.resolve_offset(9, 6).unwrap_err();
        assert_eq!(err.0, RejectReason::LineageMismatch);
    }

    #[test]
    fn handshake_reply_round_trips() {
        let base = LogHeader {
            base_users: 7,
            base_items: 3,
        };
        let mut buf = Vec::new();
        encode_reply(&mut buf, 0, &base, 42, 40, "");
        let got = read_reply(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(
            got,
            HandshakeOk {
                base,
                committed: 42,
                resume_from: 40
            }
        );
        let mut buf = Vec::new();
        encode_reply(&mut buf, 1, &base, 42, 0, "different base model");
        let (reason, msg) = read_reply(&mut &buf[..]).unwrap().unwrap_err();
        assert_eq!(reason, RejectReason::LineageMismatch);
        assert_eq!(msg, "different base model");
    }

    #[test]
    fn heartbeat_frame_round_trips() {
        let mut buf = Vec::new();
        encode_heartbeat_frame(&mut buf, 99);
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap(),
            Frame::Heartbeat { committed: 99 }
        );
    }

    #[test]
    fn frame_rejects_garbage() {
        let mut buf = vec![9u8];
        assert!(read_frame(&mut &buf[..]).is_err());
        buf.clear();
        // Record frame with an absurd length prefix.
        buf.push(1);
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 1);
        put_u32(&mut buf, u32::MAX);
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
