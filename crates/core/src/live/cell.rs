//! The epoch/RCU-style snapshot cell readers load from.

use super::engine::LiveEngine;
use std::sync::{Arc, RwLock};

/// A hot-swappable slot holding the current [`LiveEngine`].
///
/// Readers call [`load`](ModelCell::load) and get an `Arc` clone of the
/// current snapshot — from then on they are lock-free and isolated: the
/// snapshot is immutable, so a reader mid-batch keeps a fully
/// consistent engine even while the applier publishes successors. The
/// writer side ([`publish`](ModelCell::publish)) replaces the `Arc`
/// under a write lock held only for the pointer swap; engine
/// construction happens entirely outside the lock.
///
/// This is the epoch-based-reclamation shape without a dependency:
/// `Arc`'s refcount is the epoch bookkeeping (an old snapshot is freed
/// when its last reader drops it), and the brief `RwLock` around the
/// slot replaces `arc-swap`'s lock-free pointer (the vendored-deps
/// policy of this workspace; see `vendor/README.md`).
#[derive(Debug)]
pub struct ModelCell {
    slot: RwLock<Arc<LiveEngine>>,
}

impl ModelCell {
    /// A cell serving `initial` as epoch 0.
    pub fn new(initial: LiveEngine) -> ModelCell {
        ModelCell {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Cheap (one refcount bump under a read
    /// lock); hold the returned `Arc` for the duration of one request
    /// and re-`load` for the next.
    pub fn load(&self) -> Arc<LiveEngine> {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Swap in the next snapshot; in-flight readers keep the old one.
    pub fn publish(&self, next: LiveEngine) {
        *self.slot.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(next);
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }
}
