//! The update queue and its applier thread.
//!
//! Durability discipline (what makes the recovery law hold for every
//! *acknowledged* update):
//!
//! 1. an event is **validated** against the current state (no
//!    mutation);
//! 2. valid events are applied and their encodings buffered;
//! 3. the batch's encodings are appended to the WAL and flushed;
//! 4. only then is the successor snapshot published and the submitters
//!    acked.
//!
//! If the WAL write fails, nothing is published or acked, and the
//! applier enters a **read-only degraded mode**: every further update
//! is rejected with an I/O error (readers keep the last published
//! snapshot). A failed post-snapshot log rotation degrades the same
//! way — acking against a log that could not be restarted would lose
//! those events on recovery. An acked update is therefore always
//! durably logged, and a logged event is always one that validated —
//! replay never chokes on its own log.

use super::cell::ModelCell;
use super::engine::LiveEngine;
use super::event::{decode_log, encode_event, encode_log_header, LogHeader, UpdateEvent};
use super::replication::ReplicationHub;
use super::snapshot::encode_live;
use super::state::{Applied, LiveState};
use super::stats::LiveStats;
use super::LiveError;
use crate::obs::Obs;
use crate::recommend::Backend;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Applier configuration.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Inference backend every published snapshot serves with.
    pub backend: Backend,
    /// Most events folded into one publish. Batching amortises the
    /// per-publish model clone and the WAL flush; each event is still
    /// applied (and logged) individually, so replay semantics are
    /// unaffected.
    pub batch_cap: usize,
    /// Write a snapshot (and rotate the log) every this many applied
    /// events; `0` disables snapshotting.
    pub snapshot_every: u64,
    /// Event log path (the WAL). `None` = in-memory only.
    pub log_path: Option<PathBuf>,
    /// Snapshot path; required for `snapshot_every > 0` to take effect.
    pub snapshot_path: Option<PathBuf>,
    /// Catalog scan shards every published engine partitions its item
    /// matrix into (1 = unsharded). The served ranking is bit-for-bit
    /// identical at any value; see `crate::recommend::shards`.
    pub scan_shards: usize,
    /// Force the f32 scan kernel instead of auto-detecting it (`None`
    /// = detect; the kernels are bit-identical, so this only changes
    /// throughput). Surfaced as `scan_kernel` in `/live/stats` and the
    /// `taxrec_scan_kernel` info metric.
    pub scan_kernel: Option<crate::recommend::F32Kernel>,
    /// Observability bundle: the applier registers its counters and
    /// WAL/publish histograms into `obs.registry()` and traces the
    /// write path through `obs.tracer()`. The default bundle has
    /// tracing disabled and a private registry — callers that scrape
    /// `/metrics` pass the server-wide one.
    pub obs: Arc<Obs>,
    /// Retain committed records for WAL shipping: when true the handle
    /// owns a [`ReplicationHub`] (see
    /// [`LiveHandle::replication`]) that the applier commits every
    /// WAL-acked record into, and a
    /// [`super::replication::ReplicationListener`] can stream from.
    pub replicate: bool,
    /// Cap resident user-factor rows: `Some(n)` moves the user matrix
    /// into a hot/cold [`crate::tier::UserTier`] before the first
    /// publish — at most `n` rows stay hot, the rest live in a cold
    /// file (or as fold recipes) and are faulted back on demand.
    /// `None` keeps every user factor resident (the pre-tiering
    /// behaviour). Served scores are bit-identical either way; see
    /// `crates/core/tests/differential_tiering.rs`.
    pub user_tier_budget: Option<usize>,
    /// Where the tier's cold file is written when `user_tier_budget`
    /// is set. `None` derives a path beside `log_path` (or a
    /// pid-unique temp file when there is no log).
    pub tier_cold_path: Option<PathBuf>,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            backend: Backend::Exhaustive,
            batch_cap: 64,
            snapshot_every: 0,
            log_path: None,
            snapshot_path: None,
            scan_shards: 1,
            scan_kernel: None,
            obs: Arc::new(Obs::new()),
            replicate: false,
            user_tier_budget: None,
            tier_cold_path: None,
        }
    }
}

/// A successfully applied update: what it produced and the epoch at
/// which it became visible to readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedUpdate {
    /// The assigned id (item or user).
    pub applied: Applied,
    /// First epoch whose snapshots include this update. By the time the
    /// submitter sees this value, [`ModelCell::load`] already returns
    /// that epoch (replies are sent *after* publish), and the event is
    /// durably in the WAL (if one is configured).
    pub epoch: u64,
}

enum Command {
    Apply(UpdateEvent, mpsc::Sender<Result<AppliedUpdate, LiveError>>),
    Flush(mpsc::Sender<()>),
    Snapshot(mpsc::Sender<Result<bool, LiveError>>),
    Shutdown,
}

/// Owner handle for a running live subsystem: the snapshot cell for
/// readers, the update queue for writers, shared stats, and the applier
/// thread (joined on drop).
#[derive(Debug)]
pub struct LiveHandle {
    cell: Arc<ModelCell>,
    stats: Arc<LiveStats>,
    repl: Option<Arc<ReplicationHub>>,
    tx: mpsc::Sender<Command>,
    thread: Option<JoinHandle<()>>,
}

impl LiveHandle {
    /// Publish `state` as epoch 0 and start the applier thread.
    ///
    /// If `config.log_path` exists and is non-empty its header is
    /// validated and new events are appended — the caller is expected
    /// to have replayed it into `state` first (`taxrec serve` does; see
    /// [`super::replay`]). A fresh log is stamped with `state`'s
    /// current shape as its lineage.
    pub fn spawn(state: LiveState, config: LiveConfig) -> Result<LiveHandle, LiveError> {
        LiveHandle::spawn_inner(state, config, true)
    }

    /// [`spawn`](Self::spawn) for a caller that has **already strictly
    /// decoded** `config.log_path` this startup (and truncated any torn
    /// tail before replaying it into `state`): the verification decode
    /// is skipped, so the WAL is read and decoded exactly once across
    /// recovery and spawn instead of three times. The contract is the
    /// caller's to uphold — appending after undecodable bytes would
    /// hide every later record from replay, which is exactly what the
    /// strict decode in [`spawn`](Self::spawn) exists to prevent.
    pub fn spawn_recovered(state: LiveState, config: LiveConfig) -> Result<LiveHandle, LiveError> {
        LiveHandle::spawn_inner(state, config, false)
    }

    fn spawn_inner(
        mut state: LiveState,
        config: LiveConfig,
        verify_existing_log: bool,
    ) -> Result<LiveHandle, LiveError> {
        let log = match &config.log_path {
            Some(p) => Some(open_log(p, &lineage_of(&state), verify_existing_log)?),
            None => None,
        };
        // Tiering is installed before the first publish so every
        // snapshot ever handed to a reader already routes user-factor
        // reads through the tier (no untiered epoch to race with).
        if let Some(budget) = config.user_tier_budget {
            let cold = match &config.tier_cold_path {
                Some(p) => p.clone(),
                None => default_cold_path(&config),
            };
            let tier = crate::tier::UserTier::build(
                &cold,
                &state.model().user_factors,
                budget,
                config.obs.registry(),
            )
            .map_err(|e| LiveError::Io(format!("{}: building user tier: {e}", cold.display())))?;
            state.attach_user_tier(tier);
        }
        let cell = Arc::new(ModelCell::new(LiveEngine::initial_observed(
            &state,
            config.backend.clone(),
            config.scan_shards,
            config.scan_kernel,
            config.obs.registry(),
        )));
        let stats = Arc::new(LiveStats::new(config.obs.registry()));
        stats.set_model_bytes(state.model());
        // The replication stream's base is the shape at applier start:
        // a follower that bootstrapped from the same snapshot + log
        // lands exactly here.
        let repl = config.replicate.then(|| {
            Arc::new(ReplicationHub::new(
                lineage_of(&state),
                config.obs.registry(),
            ))
        });
        let (tx, rx) = mpsc::channel();
        let thread = std::thread::Builder::new()
            .name("taxrec-live-applier".into())
            .spawn({
                let cell = Arc::clone(&cell);
                let stats = Arc::clone(&stats);
                let repl = repl.clone();
                move || applier(state, config, log, cell, stats, repl, rx)
            })
            .map_err(|e| LiveError::Io(format!("spawning applier: {e}")))?;
        Ok(LiveHandle {
            cell,
            stats,
            repl,
            tx,
            thread: Some(thread),
        })
    }

    /// The snapshot cell readers load from. Clone the `Arc` and hand it
    /// to as many reader threads as you like.
    pub fn cell(&self) -> &Arc<ModelCell> {
        &self.cell
    }

    /// Live counters.
    pub fn stats(&self) -> &Arc<LiveStats> {
        &self.stats
    }

    /// The committed-record buffer WAL shipping streams from; `Some`
    /// only when spawned with [`LiveConfig::replicate`] set.
    pub fn replication(&self) -> Option<&Arc<ReplicationHub>> {
        self.repl.as_ref()
    }

    /// Enqueue one event and wait for it to be logged, applied **and
    /// published** (the returned epoch is already visible) or rejected.
    pub fn submit(&self, ev: UpdateEvent) -> Result<AppliedUpdate, LiveError> {
        let (rtx, rrx) = mpsc::channel();
        self.stats.inc_enqueued();
        self.tx
            .send(Command::Apply(ev, rtx))
            .map_err(|_| LiveError::QueueClosed)?;
        rrx.recv().map_err(|_| LiveError::QueueClosed)?
    }

    /// Wait until every event enqueued before this call is applied.
    pub fn flush(&self) -> Result<(), LiveError> {
        let (rtx, rrx) = mpsc::channel();
        self.tx
            .send(Command::Flush(rtx))
            .map_err(|_| LiveError::QueueClosed)?;
        rrx.recv().map_err(|_| LiveError::QueueClosed)
    }

    /// Write a snapshot (and rotate the log) **now**, regardless of the
    /// periodic `snapshot_every` counter — used for graceful shutdown,
    /// so a restart recovers instantly instead of replaying the whole
    /// log. Returns `Ok(false)` when no snapshot path is configured,
    /// and an error if the applier is degraded (its in-memory state may
    /// contain applied-but-unacknowledged events that must not be
    /// persisted as acked).
    pub fn snapshot_now(&self) -> Result<bool, LiveError> {
        let (rtx, rrx) = mpsc::channel();
        self.tx
            .send(Command::Snapshot(rtx))
            .map_err(|_| LiveError::QueueClosed)?;
        rrx.recv().map_err(|_| LiveError::QueueClosed)?
    }
}

impl Drop for LiveHandle {
    fn drop(&mut self) {
        if let Some(hub) = &self.repl {
            hub.close();
        }
        let _ = self.tx.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Cold-file path when [`LiveConfig::tier_cold_path`] is unset: beside
/// the WAL when one is configured (so the operator's data dir holds
/// everything), otherwise a temp file unique per process *and* per
/// spawn — the file is a rebuildable cache, never recovered from.
fn default_cold_path(config: &LiveConfig) -> PathBuf {
    if let Some(log) = &config.log_path {
        return log.with_extension("cold");
    }
    static SPAWNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = SPAWNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("taxrec-tier-{}-{n}.cold", std::process::id()))
}

fn lineage_of(state: &LiveState) -> LogHeader {
    LogHeader {
        base_users: state.model().num_users() as u64,
        base_items: state.model().num_items() as u64,
    }
}

/// Open (or create) the event log for appending. A fresh/empty log is
/// stamped with `lineage`; an existing one must decode **strictly** —
/// its events are assumed already replayed by the caller, and appending
/// preserves its original lineage (the stamp may differ from
/// `lineage`). A log with a torn tail is refused: records appended
/// after undecodable bytes would be invisible to every future replay,
/// silently dropping acked updates. Callers must truncate the torn
/// tail first (`taxrec serve` does on startup). `verify_existing` may
/// be false only when the caller itself strictly decoded the file this
/// startup ([`LiveHandle::spawn_recovered`]).
fn open_log(path: &Path, lineage: &LogHeader, verify_existing: bool) -> Result<File, LiveError> {
    let io = |e: std::io::Error| LiveError::Io(format!("{}: {e}", path.display()));
    let existing_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if existing_len > 0 && verify_existing {
        let bytes = std::fs::read(path).map_err(io)?;
        decode_log(&bytes).map_err(|e| {
            LiveError::Io(format!(
                "{}: refusing to append to a damaged event log ({e}); \
                 truncate the torn tail or recover with `taxrec replay --lossy`",
                path.display()
            ))
        })?;
    }
    let mut file = OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .map_err(io)?;
    if existing_len == 0 {
        let mut header = Vec::new();
        encode_log_header(&mut header, lineage);
        file.write_all(&header).map_err(io)?;
        file.flush().map_err(io)?;
    }
    Ok(file)
}

/// Restart the log as a bare header stamped with the just-snapshotted
/// state's lineage (the snapshot captured everything the log
/// contained). Atomic and durable — the temp file is fsynced before
/// the rename and the parent directory after it — so neither a failure
/// mid-rotation nor a power loss just after it can leave a headerless,
/// partial, or zero-length log that a loader would misread.
fn rotate_log(path: &Path, lineage: &LogHeader) -> Result<File, LiveError> {
    let io = |e: std::io::Error| LiveError::Io(format!("{}: {e}", path.display()));
    let mut header = Vec::new();
    encode_log_header(&mut header, lineage);
    let tmp = path.with_extension("log.tmp");
    {
        let mut f = File::create(&tmp).map_err(io)?;
        f.write_all(&header).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    sync_parent_dir(path);
    OpenOptions::new().append(true).open(path).map_err(io)
}

/// Best-effort fsync of `path`'s parent directory, making a just-done
/// rename durable across power loss. Errors are ignored: not every
/// platform/filesystem lets a directory be opened and synced, and the
/// rename itself already succeeded.
fn sync_parent_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = File::open(parent) {
        let _ = dir.sync_all();
    }
}

fn applier(
    mut state: LiveState,
    config: LiveConfig,
    mut log: Option<File>,
    cell: Arc<ModelCell>,
    stats: Arc<LiveStats>,
    repl: Option<Arc<ReplicationHub>>,
    rx: mpsc::Receiver<Command>,
) {
    let mut since_snapshot = 0u64;
    let mut log_buf = Vec::new();
    // Per-batch record bytes + post-apply shape, handed to the
    // replication hub only once the WAL flush and publish succeed.
    let mut repl_batch: Vec<(Vec<u8>, u64, u64)> = Vec::new();
    let tracer = config.obs.tracer();
    // Set when a WAL write fails: acked-but-unlogged events would break
    // the recovery law, so the applier stops accepting updates.
    let mut degraded = false;
    loop {
        let Ok(first) = rx.recv() else { break };
        // Drain a batch: everything already queued, up to the cap, is
        // folded into one WAL flush + publish.
        let mut batch = vec![first];
        while batch.len() < config.batch_cap.max(1) {
            match rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(_) => break,
            }
        }

        log_buf.clear();
        repl_batch.clear();
        // Write-path trace: one trace per applied batch, with spans for
        // validate/apply, the two WAL halves, and the publish. Dropped
        // unfinished for batches that apply nothing (flush-only, all
        // rejected) so the journal holds real write work only.
        let mut trace = tracer.start("apply");
        let t_validate = trace.as_ref().map(|t| t.clock());
        let mut pending: Vec<(mpsc::Sender<Result<AppliedUpdate, LiveError>>, Applied)> =
            Vec::new();
        let mut flushes = Vec::new();
        let mut snapshot_requests = Vec::new();
        let mut shutdown = false;
        for cmd in batch {
            match cmd {
                Command::Apply(ev, reply) => {
                    if degraded {
                        stats.inc_rejected();
                        let _ = reply.send(Err(LiveError::Io(
                            "event log write failed earlier; updates disabled \
                             (restart the server to recover)"
                                .into(),
                        )));
                        continue;
                    }
                    // Validate first so only applicable events reach
                    // the WAL; then apply. `validate` mirrors `apply`'s
                    // failure cases exactly, so the apply cannot fail.
                    match state.validate(&ev) {
                        Ok(()) => {
                            let record_start = log_buf.len();
                            encode_event(&mut log_buf, &ev);
                            let applied = state.apply(&ev).expect("validated event must apply");
                            if repl.is_some() {
                                repl_batch.push((
                                    log_buf[record_start..].to_vec(),
                                    state.model().num_users() as u64,
                                    state.model().num_items() as u64,
                                ));
                            }
                            // Stats are deferred until the WAL append
                            // succeeds: an event nacked by a WAL failure
                            // must count as rejected, not applied.
                            pending.push((reply, applied));
                        }
                        Err(e) => {
                            stats.inc_rejected();
                            let _ = reply.send(Err(e));
                        }
                    }
                }
                Command::Flush(reply) => flushes.push(reply),
                Command::Snapshot(reply) => snapshot_requests.push(reply),
                Command::Shutdown => shutdown = true,
            }
        }

        if let (Some(t), Some(start)) = (trace.as_mut(), t_validate) {
            t.close("validate_apply", start);
        }

        // WAL before visibility: if the append fails, nothing from this
        // batch is published or acked, and updates are disabled. The
        // two halves of the ack critical path — buffer write and flush
        // — are timed separately into the WAL histograms.
        let mut wal_ok = true;
        if !log_buf.is_empty() {
            if let Some(f) = &mut log {
                let t_span_append = trace.as_ref().map(|t| t.clock());
                let t_append = std::time::Instant::now();
                let appended = f.write_all(&log_buf);
                let append_took = t_append.elapsed();
                if let (Some(t), Some(start)) = (trace.as_mut(), t_span_append) {
                    t.close("wal_append", start);
                }
                let t_span_fsync = trace.as_ref().map(|t| t.clock());
                let t_fsync = std::time::Instant::now();
                let flushed = appended.and_then(|_| f.flush());
                let fsync_took = t_fsync.elapsed();
                if let (Some(t), Some(start)) = (trace.as_mut(), t_span_fsync) {
                    t.close("wal_fsync", start);
                }
                match flushed {
                    Ok(()) => {
                        stats.add_log_bytes(log_buf.len() as u64);
                        stats.record_wal(append_took, fsync_took);
                    }
                    Err(_) => {
                        stats.inc_log_errors();
                        stats.set_degraded();
                        degraded = true;
                        wal_ok = false;
                    }
                }
            }
        }

        if !pending.is_empty() && !wal_ok {
            // Nacked events are never shipped to followers either.
            repl_batch.clear();
            for (reply, _) in pending.drain(..) {
                stats.inc_rejected();
                let _ = reply.send(Err(LiveError::Io(
                    "event log write failed; update not accepted".into(),
                )));
            }
        }

        if !pending.is_empty() {
            for (_, applied) in &pending {
                match applied {
                    Applied::ItemAdded { .. } => stats.inc_items_added(),
                    Applied::UserFolded { .. } => stats.inc_users_folded(),
                    Applied::UserRefolded { .. } => stats.inc_users_refolded(),
                }
                stats.inc_applied();
            }
            since_snapshot += pending.len() as u64;
            // Build the successor outside any lock, swap, then reply:
            // a submitter that hears back can immediately load() an
            // engine containing its update. The whole derivation is
            // structural sharing — `state.model().clone()` inside
            // `next_from` bumps chunk refcounts, it does not copy
            // factors — so this block is O(rows touched by the batch);
            // the histogram + chunk counters prove it in production.
            let t_span_publish = trace.as_ref().map(|t| t.clock());
            let t_publish = std::time::Instant::now();
            let prev = cell.load();
            let next = LiveEngine::next_from(&prev, &state);
            let epoch = next.epoch();
            let (shared, copied) = next.model().chunk_sharing_with(prev.model());
            stats.set_model_bytes(next.model());
            cell.publish(next);
            stats.inc_publishes();
            stats.record_publish(t_publish.elapsed(), shared, copied);
            // Commit to the replication stream only now: the batch is
            // durably logged and visible to local readers, so shipping
            // it cannot expose a follower to anything a leader restart
            // would not also recover.
            if let Some(hub) = &repl {
                hub.commit(std::mem::take(&mut repl_batch));
            }
            if let (Some(t), Some(start)) = (trace.as_mut(), t_span_publish) {
                t.close("publish", start);
            }
            // The batch applied real events: the write-path trace is
            // complete, hand it to the sampler.
            if let Some(t) = trace.take() {
                tracer.finish(t);
            }
            for (reply, applied) in pending {
                let _ = reply.send(Ok(AppliedUpdate { applied, epoch }));
            }

            if config.snapshot_every > 0 && since_snapshot >= config.snapshot_every {
                let _ = snapshot_and_rotate(
                    &config,
                    &state,
                    &mut log,
                    &mut since_snapshot,
                    &mut degraded,
                    &stats,
                );
            }
        }

        // Explicit snapshot requests (graceful shutdown): refuse while
        // degraded — the in-memory state may then hold applied-but-
        // unacknowledged events, and persisting them as acked would
        // break the recovery law.
        if !snapshot_requests.is_empty() {
            let result = if degraded {
                Err(LiveError::Io(
                    "event log write failed earlier; refusing to snapshot \
                     possibly-unacknowledged state"
                        .into(),
                ))
            } else {
                snapshot_and_rotate(
                    &config,
                    &state,
                    &mut log,
                    &mut since_snapshot,
                    &mut degraded,
                    &stats,
                )
            };
            for reply in snapshot_requests {
                let _ = reply.send(result.clone());
            }
        }

        for reply in flushes {
            let _ = reply.send(());
        }
        if shutdown {
            break;
        }
    }
}

/// Write a snapshot and restart the log, shared by the periodic path
/// and explicit [`LiveHandle::snapshot_now`] requests.
///
/// The snapshot covers every logged event: the log is restarted
/// (stamped with the snapshot's lineage) so recovery replays only what
/// the snapshot missed. If a crash lands between the two writes, the
/// stale log's lineage no longer matches the snapshot and loaders
/// refuse the pair instead of double-applying. A failed rotation
/// degrades like a failed WAL append: continuing to ack against a log
/// we could not restart would break the recovery law. Returns
/// `Ok(false)` when no snapshot path is configured.
fn snapshot_and_rotate(
    config: &LiveConfig,
    state: &LiveState,
    log: &mut Option<File>,
    since_snapshot: &mut u64,
    degraded: &mut bool,
    stats: &LiveStats,
) -> Result<bool, LiveError> {
    let Some(snap_path) = &config.snapshot_path else {
        return Ok(false);
    };
    match write_snapshot(snap_path, state) {
        Ok(()) => {
            stats.inc_snapshots();
            *since_snapshot = 0;
            if let Some(log_path) = &config.log_path {
                match rotate_log(log_path, &lineage_of(state)) {
                    Ok(f) => *log = Some(f),
                    Err(e) => {
                        stats.inc_log_errors();
                        stats.set_degraded();
                        *degraded = true;
                        *log = None;
                        return Err(e);
                    }
                }
            }
            Ok(true)
        }
        Err(e) => {
            stats.inc_log_errors();
            Err(e)
        }
    }
}

/// Write a live snapshot atomically and durably (temp file fsynced
/// before the rename, parent directory after — same discipline as
/// [`rotate_log`]).
fn write_snapshot(path: &Path, state: &LiveState) -> Result<(), LiveError> {
    let io = |e: std::io::Error| LiveError::Io(format!("{}: {e}", path.display()));
    let tmp = path.with_extension("tfm.tmp");
    {
        let mut f = File::create(&tmp).map_err(io)?;
        f.write_all(&encode_live(state)).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    sync_parent_dir(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::live::snapshot::decode_live;
    use crate::live::{decode_log, replay};
    use crate::train::TfTrainer;
    use taxrec_dataset::{DatasetConfig, SyntheticDataset};
    use taxrec_taxonomy::{ItemId, NodeId};

    fn fixture() -> (SyntheticDataset, LiveState) {
        let d = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(150), 31);
        let m = TfTrainer::new(
            ModelConfig::tf(4, 1).with_factors(6).with_epochs(1),
            &d.taxonomy,
        )
        .fit(&d.train, 1);
        (d, LiveState::new(m))
    }

    fn some_parent(state: &LiveState) -> NodeId {
        let tax = state.model().taxonomy();
        tax.parent(tax.item_node(ItemId(0))).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("taxrec-live-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn submit_add_item_becomes_visible() {
        let (_, state) = fixture();
        let parent = some_parent(&state);
        let items_before = state.model().num_items();
        let handle = LiveHandle::spawn(state, LiveConfig::default()).unwrap();
        let got = handle.submit(UpdateEvent::AddItem { parent }).unwrap();
        assert!(matches!(
            got.applied,
            Applied::ItemAdded { item, .. } if item.index() == items_before
        ));
        let snap = handle.cell().load();
        assert_eq!(snap.model().num_items(), items_before + 1);
        assert!(snap.epoch() >= got.epoch);
        assert!(snap.verify_consistent());
    }

    #[test]
    fn rejected_events_do_not_publish() {
        let (_, state) = fixture();
        let leaf = state.model().taxonomy().item_node(ItemId(3));
        let handle = LiveHandle::spawn(state, LiveConfig::default()).unwrap();
        let before = handle.cell().epoch();
        let err = handle.submit(UpdateEvent::AddItem { parent: leaf });
        assert!(err.is_err());
        assert_eq!(handle.cell().epoch(), before);
        assert_eq!(handle.stats().snapshot().rejected, 1);
        assert_eq!(handle.stats().snapshot().applied, 0);
    }

    #[test]
    fn log_and_snapshot_rotation() {
        let (d, state) = fixture();
        let dir = tmpdir("rotation");
        let log_path = dir.join("events.log");
        let snap_path = dir.join("snap.tfm");
        let parent = some_parent(&state);
        let cfg = LiveConfig {
            snapshot_every: 4,
            batch_cap: 1, // deterministic publish-per-event for the test
            log_path: Some(log_path.clone()),
            snapshot_path: Some(snap_path.clone()),
            ..LiveConfig::default()
        };
        let handle = LiveHandle::spawn(state, cfg).unwrap();
        for i in 0..6u64 {
            if i % 2 == 0 {
                handle.submit(UpdateEvent::AddItem { parent }).unwrap();
            } else {
                handle
                    .submit(UpdateEvent::FoldInUser {
                        history: d.train.user(i as usize).to_vec(),
                        steps: 30,
                        seed: i,
                    })
                    .unwrap();
            }
        }
        handle.flush().unwrap();
        let live_model = handle.cell().load().model().clone();
        let stats = handle.stats().snapshot();
        drop(handle);
        assert_eq!(stats.applied, 6);
        assert!(stats.snapshots_written >= 1, "{stats:?}");
        // Recovery: snapshot + remaining log ≡ live state.
        let mut recovered = decode_live(&std::fs::read(&snap_path).unwrap()).unwrap();
        let (header, tail) = decode_log(&std::fs::read(&log_path).unwrap()).unwrap();
        assert!(
            tail.len() < 6,
            "rotated log must not contain snapshotted events"
        );
        // The rotated log's lineage stamps the snapshot it follows.
        assert_eq!(header.base_users as usize, recovered.model().num_users());
        assert_eq!(header.base_items as usize, recovered.model().num_items());
        replay(&mut recovered, &tail).unwrap();
        assert_eq!(recovered.model().num_items(), live_model.num_items());
        assert_eq!(recovered.model().num_users(), live_model.num_users());
        assert_eq!(recovered.model().user_factors, live_model.user_factors);
        assert_eq!(recovered.model().node_factors, live_model.node_factors);
    }

    #[test]
    fn fresh_log_carries_base_lineage() {
        let (_, state) = fixture();
        let dir = tmpdir("lineage");
        let log_path = dir.join("events.log");
        let (users, items) = (state.model().num_users(), state.model().num_items());
        let parent = some_parent(&state);
        let handle = LiveHandle::spawn(
            state,
            LiveConfig {
                log_path: Some(log_path.clone()),
                ..LiveConfig::default()
            },
        )
        .unwrap();
        handle.submit(UpdateEvent::AddItem { parent }).unwrap();
        drop(handle);
        let (header, events) = decode_log(&std::fs::read(&log_path).unwrap()).unwrap();
        assert_eq!(header.base_users as usize, users);
        assert_eq!(header.base_items as usize, items);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn explicit_snapshot_now_rotates_and_recovers() {
        // Graceful shutdown path: snapshot_now persists the exact live
        // state regardless of the periodic counter, and rotates the log
        // so a restart replays nothing.
        let (d, state) = fixture();
        let dir = tmpdir("snapnow");
        let log_path = dir.join("events.log");
        let snap_path = dir.join("snap.tfm");
        let parent = some_parent(&state);
        let handle = LiveHandle::spawn(
            state,
            LiveConfig {
                snapshot_every: 1000, // periodic path never fires
                log_path: Some(log_path.clone()),
                snapshot_path: Some(snap_path.clone()),
                ..LiveConfig::default()
            },
        )
        .unwrap();
        handle.submit(UpdateEvent::AddItem { parent }).unwrap();
        handle
            .submit(UpdateEvent::FoldInUser {
                history: d.train.user(3).to_vec(),
                steps: 25,
                seed: 9,
            })
            .unwrap();
        assert_eq!(handle.snapshot_now(), Ok(true));
        let live_model = handle.cell().load().model().clone();
        assert_eq!(handle.stats().snapshot().snapshots_written, 1);
        drop(handle);
        // The snapshot alone IS the final state; the rotated log holds
        // zero events and stamps the snapshot's lineage.
        let recovered = decode_live(&std::fs::read(&snap_path).unwrap()).unwrap();
        assert_eq!(recovered.model().user_factors, live_model.user_factors);
        assert_eq!(recovered.model().node_factors, live_model.node_factors);
        let (header, tail) = decode_log(&std::fs::read(&log_path).unwrap()).unwrap();
        assert!(tail.is_empty(), "rotated log must be empty");
        assert_eq!(header.base_users as usize, recovered.model().num_users());
        assert_eq!(header.base_items as usize, recovered.model().num_items());
    }

    #[test]
    fn snapshot_now_without_snapshot_path_is_a_noop() {
        let (_, state) = fixture();
        let handle = LiveHandle::spawn(state, LiveConfig::default()).unwrap();
        assert_eq!(handle.snapshot_now(), Ok(false));
        assert_eq!(handle.stats().snapshot().snapshots_written, 0);
    }

    #[test]
    fn open_log_rejects_foreign_files() {
        let dir = tmpdir("foreign");
        let path = dir.join("not-a-log.bin");
        std::fs::write(&path, b"definitely not an event log").unwrap();
        let lineage = LogHeader {
            base_users: 1,
            base_items: 1,
        };
        assert!(matches!(
            open_log(&path, &lineage, true),
            Err(LiveError::Io(_))
        ));
    }

    #[test]
    fn open_log_refuses_torn_tail() {
        // A crash mid-append leaves a partial record. Appending after it
        // would hide every later record from replay, so open_log must
        // refuse until the tail is truncated away.
        let (_, state) = fixture();
        let dir = tmpdir("torn");
        let log_path = dir.join("events.log");
        let parent = some_parent(&state);
        let lineage = lineage_of(&state);
        let handle = LiveHandle::spawn(
            state,
            LiveConfig {
                log_path: Some(log_path.clone()),
                ..LiveConfig::default()
            },
        )
        .unwrap();
        handle.submit(UpdateEvent::AddItem { parent }).unwrap();
        drop(handle);
        let intact = std::fs::read(&log_path).unwrap();
        // Claim an 8-byte payload but supply only one byte of it.
        let mut torn = intact.clone();
        torn.extend_from_slice(&[8, 0, 0, 0, 1]);
        std::fs::write(&log_path, &torn).unwrap();
        assert!(matches!(
            open_log(&log_path, &lineage, true),
            Err(LiveError::Io(_))
        ));
        // Truncating back to the last whole record makes it appendable.
        std::fs::write(&log_path, &intact).unwrap();
        assert!(open_log(&log_path, &lineage, true).is_ok());
    }

    #[test]
    fn rotation_failure_enters_degraded_mode() {
        // Snapshots land in a healthy dir but the log's dir vanishes, so
        // the post-snapshot rotation fails. The applier must stop acking
        // (degraded mode), not keep appending to a log it cannot restart.
        let (_, state) = fixture();
        let parent = some_parent(&state);
        let log_dir = tmpdir("rotfail-log");
        let snap_dir = tmpdir("rotfail-snap");
        let handle = LiveHandle::spawn(
            state,
            LiveConfig {
                snapshot_every: 2,
                batch_cap: 1,
                log_path: Some(log_dir.join("events.log")),
                snapshot_path: Some(snap_dir.join("snap.tfm")),
                ..LiveConfig::default()
            },
        )
        .unwrap();
        handle.submit(UpdateEvent::AddItem { parent }).unwrap();
        // The open handle keeps the inode alive; only rotation's fresh
        // temp-file write can notice the directory is gone.
        std::fs::remove_dir_all(&log_dir).unwrap();
        handle.submit(UpdateEvent::AddItem { parent }).unwrap();
        let err = handle.submit(UpdateEvent::AddItem { parent });
        assert!(matches!(err, Err(LiveError::Io(_))), "{err:?}");
        let stats = handle.stats().snapshot();
        assert!(stats.log_errors >= 1, "{stats:?}");
        assert_eq!(stats.applied, 2);
    }
}
