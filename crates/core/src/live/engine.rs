//! The immutable serving snapshot readers hold across an epoch.

use super::state::LiveState;
use crate::model::TfModel;
use crate::obs::{MetricsRegistry, ScanMetrics};
use crate::recommend::{Backend, RecommendEngine};
use std::sync::Arc;
use taxrec_dataset::Transaction;
use taxrec_taxonomy::ItemId;

/// One published epoch of the live model: an owned
/// [`RecommendEngine<Arc<TfModel>>`] plus the serving side state
/// (folded-user histories, epoch stamp). Immutable — readers that
/// loaded it keep a fully consistent view while newer epochs are
/// published behind them.
#[derive(Debug)]
pub struct LiveEngine {
    engine: RecommendEngine<Arc<TfModel>>,
    histories: Vec<Arc<[Transaction]>>,
    base_users: usize,
    base_items: usize,
    epoch: u64,
}

impl LiveEngine {
    /// Build epoch 0 from scratch (full engine construction), with the
    /// item catalog partitioned into `scan_shards` contiguous scan
    /// shards (1 = unsharded; see
    /// [`crate::recommend::RecommendEngine::with_backend_sharded`]).
    /// Successor epochs inherit the shard layout — a live `AddItem`
    /// appends to the last shard's tail.
    pub fn initial(state: &LiveState, backend: Backend, scan_shards: usize) -> LiveEngine {
        LiveEngine {
            engine: RecommendEngine::with_backend_sharded(
                Arc::new(state.model().clone()),
                backend,
                scan_shards,
            ),
            histories: state.histories().to_vec(),
            base_users: state.base_users(),
            base_items: state.base_items(),
            epoch: 0,
        }
    }

    /// [`initial`](Self::initial) with per-shard scan counters
    /// registered into `registry` (one rows/blocks/busy-µs triple per
    /// *actual* shard — the plan may clamp the requested count).
    /// Successor epochs share the counters by `Arc` through
    /// [`RecommendEngine::grown_from`], so scan totals survive
    /// publishes. `kernel` forces the f32 scan kernel (`None` =
    /// auto-detect); the `taxrec_scan_kernel` info metric reports
    /// whichever ends up active.
    pub fn initial_observed(
        state: &LiveState,
        backend: Backend,
        scan_shards: usize,
        kernel: Option<crate::recommend::F32Kernel>,
        registry: &MetricsRegistry,
    ) -> LiveEngine {
        let mut live = LiveEngine::initial(state, backend, scan_shards);
        if let Some(k) = kernel {
            live.engine.set_scan_kernel(k);
        }
        let metrics = ScanMetrics::register(registry, live.engine.scan_shards());
        live.engine.set_scan_metrics(metrics);
        ScanMetrics::register_kernel_info(registry, live.engine.scan_kernel().name());
        live
    }

    /// Build the successor snapshot after `state` absorbed a batch of
    /// events: the scan matrix and effective-factor tables are derived
    /// incrementally from `prev` ([`RecommendEngine::grown_from`] —
    /// `O(change)`), histories are shared by pointer, and the epoch
    /// advances by one.
    pub fn next_from(prev: &LiveEngine, state: &LiveState) -> LiveEngine {
        LiveEngine {
            engine: RecommendEngine::grown_from(
                &prev.engine,
                Arc::new(state.model().clone()),
                prev.engine.backend().clone(),
            ),
            histories: state.histories().to_vec(),
            base_users: state.base_users(),
            base_items: state.base_items(),
            epoch: prev.epoch + 1,
        }
    }

    /// The batched recommendation engine for this epoch.
    pub fn engine(&self) -> &RecommendEngine<Arc<TfModel>> {
        &self.engine
    }

    /// The model this epoch serves.
    pub fn model(&self) -> &TfModel {
        self.engine.model()
    }

    /// Monotone publish counter (0 = the initial snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Users the model was trained with; ids at or above are folded-in.
    pub fn base_users(&self) -> usize {
        self.base_users
    }

    /// Items the model was trained with; ids at or above were added live.
    pub fn base_items(&self) -> usize {
        self.base_items
    }

    /// Items added live as of this epoch.
    pub fn items_added(&self) -> usize {
        self.model().num_items() - self.base_items
    }

    /// Users folded in live as of this epoch.
    pub fn users_folded(&self) -> usize {
        self.histories.len()
    }

    /// Catalog scan shards every snapshot of this lineage partitions
    /// the item matrix into (surfaced in `GET /live/stats`).
    pub fn scan_shards(&self) -> usize {
        self.engine.scan_shards()
    }

    /// Name of the active f32 scan kernel (`"scalar"` / `"avx2"`),
    /// selected once at epoch-0 construction and inherited by every
    /// successor snapshot (surfaced in `GET /live/stats`).
    pub fn scan_kernel(&self) -> &'static str {
        self.engine.scan_kernel().name()
    }

    /// Lineage-wide quantized first-pass pool counters (zero unless the
    /// backend is [`Backend::Quantized`]; surfaced in `GET /live/stats`).
    pub fn quant_pool_stats(&self) -> crate::recommend::QuantPoolStats {
        self.engine.quant_pool_stats()
    }

    /// History of a folded-in user (`None` for trained users, whose
    /// history lives in the training log).
    pub fn folded_history(&self, user: usize) -> Option<&[Transaction]> {
        user.checked_sub(self.base_users)
            .and_then(|i| self.histories.get(i))
            .map(|h| &**h)
    }

    /// Cross-check every internal size relation plus a factor
    /// spot-check between the dense scan matrix and the scorer — the
    /// "readers never observe a mix" detector used by the swap tests
    /// and the `fig7c_live` bench. `true` iff the snapshot is
    /// internally consistent.
    pub fn verify_consistent(&self) -> bool {
        let model = self.model();
        if self.engine.catalog_len() != model.num_items() {
            return false;
        }
        if model.num_users() != self.base_users + self.histories.len() {
            return false;
        }
        if model.num_items() < self.base_items {
            return false;
        }
        // The scan shards must tile the catalog exactly once — no gap,
        // no overlap, nothing past the model's item count.
        let mut next = 0usize;
        for (start, end) in self.engine.shard_ranges() {
            if start != next || end < start {
                return false;
            }
            next = end;
        }
        if next != model.num_items() {
            return false;
        }
        // Spot-check first/last item: dense row ≡ effective factor.
        for idx in [0, model.num_items().saturating_sub(1)] {
            if model.num_items() == 0 {
                break;
            }
            let item = ItemId(idx as u32);
            if self.engine.dense_item_factor(item) != self.engine.scorer().item_factor(item) {
                return false;
            }
        }
        true
    }
}
