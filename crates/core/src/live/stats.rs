//! Counters the applier maintains and `GET /live/stats` serves.

use crate::histogram::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared, lock-free counters describing the live subsystem's activity.
/// All counters are monotone; read them individually or grab a
/// coherent-enough [`snapshot`](LiveStats::snapshot) for reporting.
#[derive(Debug, Default)]
pub struct LiveStats {
    enqueued: AtomicU64,
    applied: AtomicU64,
    rejected: AtomicU64,
    items_added: AtomicU64,
    users_folded: AtomicU64,
    publishes: AtomicU64,
    snapshots_written: AtomicU64,
    log_bytes: AtomicU64,
    log_errors: AtomicU64,
    /// Per-publish cost of deriving + swapping the successor snapshot
    /// (the structural-sharing block, not the per-event apply).
    publish_latency: Histogram,
    /// Sum of all publish latencies, in **nanoseconds** — accumulated
    /// at full resolution so sub-microsecond publishes (the common case
    /// for a structural-sharing publish) are not truncated to zero.
    /// Surfaced as microseconds in the snapshot.
    publish_ns_total: AtomicU64,
    /// Factor chunks the successor model shared with its predecessor by
    /// pointer, summed over publishes — the proof COW is engaged.
    model_shared_chunks: AtomicU64,
    /// Factor chunks the successor model did *not* share (copied for a
    /// mutation or freshly appended), summed over publishes.
    model_copied_chunks: AtomicU64,
}

/// A plain-data copy of every counter at one read point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStatsSnapshot {
    /// Events accepted into the queue.
    pub enqueued: u64,
    /// Events applied to the model.
    pub applied: u64,
    /// Events rejected (invalid parent, unknown item, …).
    pub rejected: u64,
    /// `AddItem` events applied.
    pub items_added: u64,
    /// `FoldInUser` events applied.
    pub users_folded: u64,
    /// Snapshot publishes (equals the current epoch).
    pub publishes: u64,
    /// `.tfm` snapshots written by the applier.
    pub snapshots_written: u64,
    /// Bytes appended to the event log.
    pub log_bytes: u64,
    /// Event-log write failures (durability is then degraded; the
    /// in-memory state is still correct).
    pub log_errors: u64,
    /// Publish-cost p50, microseconds (power-of-two bucket upper bound).
    pub publish_p50_us: u64,
    /// Publish-cost p99, microseconds (power-of-two bucket upper bound).
    pub publish_p99_us: u64,
    /// Sum of all publish latencies, microseconds (accumulated in
    /// nanoseconds internally, so many sub-µs publishes still add up).
    pub publish_us_total: u64,
    /// Model factor chunks shared with the predecessor across all
    /// publishes (see [`crate::TfModel::chunk_sharing_with`]).
    pub model_shared_chunks: u64,
    /// Model factor chunks copied/appended across all publishes. For an
    /// O(change) publish path this stays near the event count while
    /// `model_shared_chunks` grows with catalog × publishes.
    pub model_copied_chunks: u64,
}

impl LiveStats {
    pub(crate) fn inc_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_applied(&self) {
        self.applied.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_items_added(&self) {
        self.items_added.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_users_folded(&self) {
        self.users_folded.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_publishes(&self) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_snapshots(&self) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_log_bytes(&self, n: u64) {
        self.log_bytes.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn inc_log_errors(&self) {
        self.log_errors.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_publish(&self, took: Duration, shared_chunks: u64, copied_chunks: u64) {
        self.publish_latency.record(took);
        self.publish_ns_total.fetch_add(
            took.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        self.model_shared_chunks
            .fetch_add(shared_chunks, Ordering::Relaxed);
        self.model_copied_chunks
            .fetch_add(copied_chunks, Ordering::Relaxed);
    }

    /// Events enqueued but not yet applied or rejected (approximate —
    /// the counters are read independently).
    pub fn pending(&self) -> u64 {
        let done = self.applied.load(Ordering::Relaxed) + self.rejected.load(Ordering::Relaxed);
        self.enqueued.load(Ordering::Relaxed).saturating_sub(done)
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> LiveStatsSnapshot {
        let publish = self.publish_latency.snapshot();
        LiveStatsSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            items_added: self.items_added.load(Ordering::Relaxed),
            users_folded: self.users_folded.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            log_errors: self.log_errors.load(Ordering::Relaxed),
            publish_p50_us: publish.quantile_us(0.50),
            publish_p99_us: publish.quantile_us(0.99),
            publish_us_total: self.publish_ns_total.load(Ordering::Relaxed) / 1_000,
            model_shared_chunks: self.model_shared_chunks.load(Ordering::Relaxed),
            model_copied_chunks: self.model_copied_chunks.load(Ordering::Relaxed),
        }
    }
}
