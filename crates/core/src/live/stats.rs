//! Counters the applier maintains and `GET /live/stats` serves.
//!
//! Since the observability rework every counter and latency histogram
//! here is a handle into the unified [`MetricsRegistry`] — `/live/stats`
//! and `GET /metrics` read the very same atomics, and quantiles come
//! from the one [`crate::histogram`] implementation.

use crate::obs::{Counter, Gauge, HistogramHandle, MetricsRegistry};
use std::time::Duration;

/// Shared, lock-free counters describing the live subsystem's activity.
/// All counters are monotone; read them individually or grab a
/// coherent-enough [`snapshot`](LiveStats::snapshot) for reporting.
///
/// Construct with [`LiveStats::new`] to register every series into a
/// [`MetricsRegistry`]; `Default` registers into a private throwaway
/// registry (tests, benches that don't scrape).
#[derive(Debug)]
pub struct LiveStats {
    enqueued: Counter,
    applied: Counter,
    rejected: Counter,
    items_added: Counter,
    users_folded: Counter,
    users_refolded: Counter,
    publishes: Counter,
    snapshots_written: Counter,
    log_bytes: Counter,
    log_errors: Counter,
    /// Per-publish cost of deriving + swapping the successor snapshot
    /// (the structural-sharing block, not the per-event apply).
    publish_latency: HistogramHandle,
    /// WAL buffer write (`write_all`) — the first half of the ack
    /// critical path.
    wal_append: HistogramHandle,
    /// WAL flush — the second half of the ack critical path.
    wal_fsync: HistogramHandle,
    /// Factor chunks the successor model shared with its predecessor by
    /// pointer, summed over publishes — the proof COW is engaged.
    model_shared_chunks: Counter,
    /// Factor chunks the successor model did *not* share (copied for a
    /// mutation or freshly appended), summed over publishes.
    model_copied_chunks: Counter,
    /// 1 once the applier has dropped to read-only degraded mode after a
    /// WAL append/rotation failure; never clears without a restart.
    degraded: Gauge,
    /// Resident factor bytes per table × sharing kind
    /// (`taxrec_model_bytes{table,kind}`), refreshed at every publish —
    /// what tiering saves is visible as the user table's bytes.
    model_bytes: [[Gauge; 2]; 3],
}

impl Default for LiveStats {
    fn default() -> LiveStats {
        LiveStats::new(&MetricsRegistry::new())
    }
}

/// A plain-data copy of every counter at one read point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStatsSnapshot {
    /// Events accepted into the queue.
    pub enqueued: u64,
    /// Events applied to the model.
    pub applied: u64,
    /// Events rejected (invalid parent, unknown item, …).
    pub rejected: u64,
    /// `AddItem` events applied.
    pub items_added: u64,
    /// `FoldInUser` events applied.
    pub users_folded: u64,
    /// `RefoldUser` events applied (an existing folded user's factor
    /// recomputed from a replacement history).
    pub users_refolded: u64,
    /// Snapshot publishes (equals the current epoch).
    pub publishes: u64,
    /// `.tfm` snapshots written by the applier.
    pub snapshots_written: u64,
    /// Bytes appended to the event log.
    pub log_bytes: u64,
    /// Event-log write failures (durability is then degraded; the
    /// in-memory state is still correct).
    pub log_errors: u64,
    /// Publish-cost p50, microseconds (power-of-two bucket upper bound).
    pub publish_p50_us: u64,
    /// Publish-cost p99, microseconds (power-of-two bucket upper bound).
    pub publish_p99_us: u64,
    /// Sum of all publish latencies, microseconds (accumulated in
    /// nanoseconds internally, so many sub-µs publishes still add up).
    pub publish_us_total: u64,
    /// WAL append (`write_all`) p50, microseconds.
    pub wal_append_p50_us: u64,
    /// WAL append (`write_all`) p99, microseconds.
    pub wal_append_p99_us: u64,
    /// WAL fsync/flush p50, microseconds.
    pub wal_fsync_p50_us: u64,
    /// WAL fsync/flush p99, microseconds.
    pub wal_fsync_p99_us: u64,
    /// Model factor chunks shared with the predecessor across all
    /// publishes (see [`crate::TfModel::chunk_sharing_with`]).
    pub model_shared_chunks: u64,
    /// Model factor chunks copied/appended across all publishes. For an
    /// O(change) publish path this stays near the event count while
    /// `model_shared_chunks` grows with catalog × publishes.
    pub model_copied_chunks: u64,
    /// True once the applier has dropped to read-only degraded mode
    /// after a WAL append/rotation failure. A degraded leader stops
    /// acking writes and stops shipping replication records.
    pub degraded: bool,
    /// Resident factor bytes per table, `(shared, owned)` by chunk
    /// refcount, in `(user, node, next)` order. Updated at publish time.
    pub model_bytes: [(u64, u64); 3],
}

impl LiveStats {
    /// Register every live-subsystem series into `registry` and return
    /// the handle bundle. Idempotent per registry: a second call hands
    /// back handles onto the same atomics.
    pub fn new(registry: &MetricsRegistry) -> LiveStats {
        let c = |name: &str, help: &str| registry.counter(name, help, &[]);
        let h = |name: &str, help: &str| registry.histogram(name, help, &[]);
        LiveStats {
            enqueued: c(
                "taxrec_live_events_enqueued_total",
                "Update events accepted into the live queue",
            ),
            applied: c(
                "taxrec_live_events_applied_total",
                "Update events applied to the model",
            ),
            rejected: c(
                "taxrec_live_events_rejected_total",
                "Update events rejected (invalid parent, unknown item, ...)",
            ),
            items_added: c("taxrec_live_items_added_total", "AddItem events applied"),
            users_folded: c(
                "taxrec_live_users_folded_total",
                "FoldInUser events applied",
            ),
            users_refolded: c(
                "taxrec_live_users_refolded_total",
                "RefoldUser events applied (existing folded user recomputed)",
            ),
            publishes: c(
                "taxrec_live_publishes_total",
                "Model snapshot publishes (equals the current epoch)",
            ),
            snapshots_written: c(
                "taxrec_live_snapshots_written_total",
                ".tfm snapshots written by the applier",
            ),
            log_bytes: c(
                "taxrec_live_wal_bytes_total",
                "Bytes appended to the event log",
            ),
            log_errors: c(
                "taxrec_live_wal_errors_total",
                "Event-log write failures (durability degraded)",
            ),
            publish_latency: h(
                "taxrec_live_publish_seconds",
                "Per-publish cost of deriving + swapping the successor snapshot",
            ),
            wal_append: h(
                "taxrec_wal_append_seconds",
                "WAL buffer write (write_all) latency, first half of the ack critical path",
            ),
            wal_fsync: h(
                "taxrec_wal_fsync_seconds",
                "WAL flush latency, second half of the ack critical path",
            ),
            model_shared_chunks: c(
                "taxrec_live_model_shared_chunks_total",
                "Factor chunks shared with the predecessor model across publishes",
            ),
            model_copied_chunks: c(
                "taxrec_live_model_copied_chunks_total",
                "Factor chunks copied or appended across publishes",
            ),
            degraded: registry.gauge(
                "taxrec_live_degraded",
                "1 when the applier is read-only degraded after a WAL failure",
                &[],
            ),
            model_bytes: ["user", "node", "next"].map(|table| {
                ["shared", "owned"].map(|kind| {
                    registry.gauge(
                        "taxrec_model_bytes",
                        "Resident factor bytes by table and chunk-sharing kind",
                        &[("table", table), ("kind", kind)],
                    )
                })
            }),
        }
    }

    pub(crate) fn inc_enqueued(&self) {
        self.enqueued.inc();
    }
    pub(crate) fn inc_applied(&self) {
        self.applied.inc();
    }
    pub(crate) fn inc_rejected(&self) {
        self.rejected.inc();
    }
    pub(crate) fn inc_items_added(&self) {
        self.items_added.inc();
    }
    pub(crate) fn inc_users_folded(&self) {
        self.users_folded.inc();
    }
    pub(crate) fn inc_users_refolded(&self) {
        self.users_refolded.inc();
    }
    /// Refresh the `taxrec_model_bytes{table,kind}` gauges from the
    /// published model's chunk refcounts.
    pub(crate) fn set_model_bytes(&self, model: &crate::model::TfModel) {
        for (gauges, m) in self.model_bytes.iter().zip(model.cow_matrices()) {
            let (shared, owned) = m.byte_sizes();
            gauges[0].set(shared);
            gauges[1].set(owned);
        }
    }
    pub(crate) fn inc_publishes(&self) {
        self.publishes.inc();
    }
    pub(crate) fn inc_snapshots(&self) {
        self.snapshots_written.inc();
    }
    pub(crate) fn add_log_bytes(&self, n: u64) {
        self.log_bytes.add(n);
    }
    pub(crate) fn inc_log_errors(&self) {
        self.log_errors.inc();
    }
    pub(crate) fn record_publish(&self, took: Duration, shared_chunks: u64, copied_chunks: u64) {
        self.publish_latency.record(took);
        self.model_shared_chunks.add(shared_chunks);
        self.model_copied_chunks.add(copied_chunks);
    }
    /// Record one WAL append+flush on the ack critical path.
    pub(crate) fn record_wal(&self, append: Duration, fsync: Duration) {
        self.wal_append.record(append);
        self.wal_fsync.record(fsync);
    }
    pub(crate) fn set_degraded(&self) {
        self.degraded.set(1);
    }

    /// True once the applier has dropped to read-only degraded mode.
    pub fn degraded(&self) -> bool {
        self.degraded.get() != 0
    }

    /// Events enqueued but not yet applied or rejected (approximate —
    /// the counters are read independently).
    pub fn pending(&self) -> u64 {
        let done = self.applied.get() + self.rejected.get();
        self.enqueued.get().saturating_sub(done)
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> LiveStatsSnapshot {
        LiveStatsSnapshot {
            enqueued: self.enqueued.get(),
            applied: self.applied.get(),
            rejected: self.rejected.get(),
            items_added: self.items_added.get(),
            users_folded: self.users_folded.get(),
            users_refolded: self.users_refolded.get(),
            publishes: self.publishes.get(),
            snapshots_written: self.snapshots_written.get(),
            log_bytes: self.log_bytes.get(),
            log_errors: self.log_errors.get(),
            publish_p50_us: self.publish_latency.quantile_us(0.50),
            publish_p99_us: self.publish_latency.quantile_us(0.99),
            publish_us_total: self.publish_latency.sum_us(),
            wal_append_p50_us: self.wal_append.quantile_us(0.50),
            wal_append_p99_us: self.wal_append.quantile_us(0.99),
            wal_fsync_p50_us: self.wal_fsync.quantile_us(0.50),
            wal_fsync_p99_us: self.wal_fsync.quantile_us(0.99),
            model_shared_chunks: self.model_shared_chunks.get(),
            model_copied_chunks: self.model_copied_chunks.get(),
            degraded: self.degraded(),
            model_bytes: [0, 1, 2].map(|i| {
                let g = &self.model_bytes[i];
                (g[0].get(), g[1].get())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_register_into_the_shared_registry() {
        let reg = MetricsRegistry::new();
        let stats = LiveStats::new(&reg);
        stats.inc_applied();
        stats.record_wal(Duration::from_micros(40), Duration::from_micros(900));
        stats.record_publish(Duration::from_micros(7), 10, 2);
        let text = reg.render_prometheus();
        assert!(
            text.contains("taxrec_live_events_applied_total 1"),
            "{text}"
        );
        assert!(text.contains("taxrec_wal_append_seconds_count 1"), "{text}");
        assert!(text.contains("taxrec_wal_fsync_seconds_count 1"), "{text}");
        assert!(
            text.contains("taxrec_live_publish_seconds_count 1"),
            "{text}"
        );
        let snap = stats.snapshot();
        assert_eq!(snap.applied, 1);
        assert_eq!(snap.wal_append_p50_us, 64);
        assert_eq!(snap.wal_fsync_p50_us, 1024);
        assert_eq!(snap.model_shared_chunks, 10);
        assert_eq!(snap.model_copied_chunks, 2);
    }

    #[test]
    fn default_stats_still_work_standalone() {
        let stats = LiveStats::default();
        stats.inc_enqueued();
        stats.inc_enqueued();
        stats.inc_applied();
        assert_eq!(stats.pending(), 1);
        let snap = stats.snapshot();
        assert_eq!(snap.enqueued, 2);
        assert_eq!(snap.publish_p50_us, 0, "empty histogram quantile is 0");
    }
}
