//! Counters the applier maintains and `GET /live/stats` serves.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free counters describing the live subsystem's activity.
/// All counters are monotone; read them individually or grab a
/// coherent-enough [`snapshot`](LiveStats::snapshot) for reporting.
#[derive(Debug, Default)]
pub struct LiveStats {
    enqueued: AtomicU64,
    applied: AtomicU64,
    rejected: AtomicU64,
    items_added: AtomicU64,
    users_folded: AtomicU64,
    publishes: AtomicU64,
    snapshots_written: AtomicU64,
    log_bytes: AtomicU64,
    log_errors: AtomicU64,
}

/// A plain-data copy of every counter at one read point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStatsSnapshot {
    /// Events accepted into the queue.
    pub enqueued: u64,
    /// Events applied to the model.
    pub applied: u64,
    /// Events rejected (invalid parent, unknown item, …).
    pub rejected: u64,
    /// `AddItem` events applied.
    pub items_added: u64,
    /// `FoldInUser` events applied.
    pub users_folded: u64,
    /// Snapshot publishes (equals the current epoch).
    pub publishes: u64,
    /// `.tfm` snapshots written by the applier.
    pub snapshots_written: u64,
    /// Bytes appended to the event log.
    pub log_bytes: u64,
    /// Event-log write failures (durability is then degraded; the
    /// in-memory state is still correct).
    pub log_errors: u64,
}

impl LiveStats {
    pub(crate) fn inc_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_applied(&self) {
        self.applied.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_items_added(&self) {
        self.items_added.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_users_folded(&self) {
        self.users_folded.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_publishes(&self) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_snapshots(&self) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_log_bytes(&self, n: u64) {
        self.log_bytes.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn inc_log_errors(&self) {
        self.log_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Events enqueued but not yet applied or rejected (approximate —
    /// the counters are read independently).
    pub fn pending(&self) -> u64 {
        let done = self.applied.load(Ordering::Relaxed) + self.rejected.load(Ordering::Relaxed);
        self.enqueued.load(Ordering::Relaxed).saturating_sub(done)
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> LiveStatsSnapshot {
        LiveStatsSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            items_added: self.items_added.load(Ordering::Relaxed),
            users_folded: self.users_folded.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            log_errors: self.log_errors.load(Ordering::Relaxed),
        }
    }
}
