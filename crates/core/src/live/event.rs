//! The update-event vocabulary and its length-prefixed binary log codec.
//!
//! Layout (all little-endian, same `bytes_shim` idiom as
//! [`crate::persist`]):
//!
//! ```text
//! header  u32 magic = 0x5446_4c31 ("TFL1"), u8 version = 2,
//!         u64 base_users, u64 base_items      — the lineage stamp
//! record  u32 payload_len, payload:
//!   u8 tag = 1 (AddItem):    u32 parent
//!   u8 tag = 2 (FoldInUser): u64 steps, u64 seed,
//!                            u32 baskets, per basket: u32 items, items…
//!   u8 tag = 3 (RefoldUser): u64 user, u64 steps, u64 seed,
//!                            u32 baskets, per basket: u32 items, items…
//! ```
//!
//! The **lineage stamp** records the user/item counts of the state the
//! log's first event applies to. Replaying a log over any other state
//! is a deterministic way to corrupt a model (fold-ins would be
//! re-seeded against the wrong catalog, acked events silently lost), so
//! loaders compare the stamp against the base model before replaying —
//! the classic "snapshot rotated, operator restarted with the original
//! `--model`" footgun becomes a hard error instead of silent data loss.
//!
//! Records are self-delimiting so a log can be appended to forever and
//! replayed from its base. The decoder never panics on arbitrary input
//! (property-tested), and [`decode_log_lossy`] additionally tolerates a
//! truncated final record — the normal shape of a log whose writer died
//! mid-append.

use crate::persist::bytes_shim::{get_u32, get_u64, put_u32, put_u64};
use crate::persist::PersistError;
use taxrec_dataset::Transaction;
use taxrec_taxonomy::{ItemId, NodeId};

const LOG_MAGIC: u32 = 0x5446_4c31; // "TFL1"
const LOG_VERSION: u8 = 2;
/// Bytes occupied by the log header ([`encode_log_header`]).
pub const LOG_HEADER_LEN: usize = 4 + 1 + 8 + 8;

/// Largest `steps` a decoded fold-in event may carry — the same bound
/// the HTTP layer enforces, applied again at decode time so a corrupt
/// or hostile log cannot make replay spin for 2^64 BPR steps.
pub const MAX_EVENT_FOLD_STEPS: usize = 1_000_000;

const TAG_ADD_ITEM: u8 = 1;
const TAG_FOLD_IN: u8 = 2;
const TAG_REFOLD: u8 = 3;

/// The lineage stamp a log carries: the shape of the state its first
/// event applies to (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHeader {
    /// `model.num_users()` of the base state.
    pub base_users: u64,
    /// `model.num_items()` of the base state.
    pub base_items: u64,
}

impl LogHeader {
    /// Whether this lineage stamp matches `model`'s current shape — the
    /// precondition for replaying the log over that model. Every loader
    /// (`taxrec serve`, `taxrec replay`) checks this before replaying.
    pub fn matches_model(&self, model: &crate::model::TfModel) -> bool {
        self.base_users as usize == model.num_users()
            && self.base_items as usize == model.num_items()
    }
}

/// One update to the live model. Events are **deterministic**: applying
/// the same event sequence to the same starting model always produces
/// the bit-identical result (fold-ins carry their own seed), which is
/// what makes `snapshot + replay(log) ≡ live state` hold.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateEvent {
    /// A newly released item enters the catalog under an existing
    /// category; its factors start at its category's (Fig. 7c).
    AddItem {
        /// The interior category node the item is released under.
        parent: NodeId,
    },
    /// An out-of-matrix user is folded in against frozen item factors
    /// (the paper's new-user story) and becomes servable under a fresh
    /// user id.
    FoldInUser {
        /// The user's observed baskets, oldest first.
        history: Vec<Transaction>,
        /// BPR steps for [`crate::dynamic::fold_in_user`] (at most
        /// [`MAX_EVENT_FOLD_STEPS`]).
        steps: usize,
        /// RNG seed — recorded so replay reproduces the exact factor.
        seed: u64,
    },
    /// An already folded-in user's factor is recomputed **from scratch**
    /// against the current catalog from a full replacement history. The
    /// history replaces (never appends to) the stored one, so a user
    /// who was evicted, faulted back, and folded again is never
    /// double-counted.
    RefoldUser {
        /// The folded-in user id (must be ≥ the base model's user count).
        user: usize,
        /// The user's complete baskets, oldest first — replaces the
        /// stored history.
        history: Vec<Transaction>,
        /// BPR steps (at most [`MAX_EVENT_FOLD_STEPS`]).
        steps: usize,
        /// RNG seed — recorded so replay reproduces the exact factor.
        seed: u64,
    },
}

/// Write the log file header (magic, version, lineage stamp).
pub fn encode_log_header(out: &mut Vec<u8>, header: &LogHeader) {
    put_u32(out, LOG_MAGIC);
    out.push(LOG_VERSION);
    put_u64(out, header.base_users);
    put_u64(out, header.base_items);
}

/// Append one length-prefixed event record.
pub fn encode_event(out: &mut Vec<u8>, ev: &UpdateEvent) {
    let mut payload = Vec::new();
    match ev {
        UpdateEvent::AddItem { parent } => {
            payload.push(TAG_ADD_ITEM);
            put_u32(&mut payload, parent.0);
        }
        UpdateEvent::FoldInUser {
            history,
            steps,
            seed,
        } => {
            payload.push(TAG_FOLD_IN);
            put_u64(&mut payload, *steps as u64);
            put_u64(&mut payload, *seed);
            encode_baskets(&mut payload, history);
        }
        UpdateEvent::RefoldUser {
            user,
            history,
            steps,
            seed,
        } => {
            payload.push(TAG_REFOLD);
            put_u64(&mut payload, *user as u64);
            put_u64(&mut payload, *steps as u64);
            put_u64(&mut payload, *seed);
            encode_baskets(&mut payload, history);
        }
    }
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(&payload);
}

fn encode_baskets(payload: &mut Vec<u8>, history: &[Transaction]) {
    put_u32(payload, history.len() as u32);
    for basket in history {
        put_u32(payload, basket.len() as u32);
        for item in basket {
            put_u32(payload, item.0);
        }
    }
}

fn decode_header(buf: &[u8], pos: &mut usize) -> Result<LogHeader, PersistError> {
    let magic = get_u32(buf, pos)?;
    if magic != LOG_MAGIC {
        return Err(PersistError::Corrupt(format!(
            "bad event-log magic 0x{magic:08x}, expected 0x{LOG_MAGIC:08x}"
        )));
    }
    match buf.get(*pos) {
        Some(&LOG_VERSION) => *pos += 1,
        Some(&v) => {
            return Err(PersistError::Corrupt(format!(
                "unsupported event-log version {v}, expected {LOG_VERSION}"
            )))
        }
        None => return Err(PersistError::Corrupt("missing event-log version".into())),
    }
    Ok(LogHeader {
        base_users: get_u64(buf, pos)?,
        base_items: get_u64(buf, pos)?,
    })
}

/// Decode a nested basket list (`u32 baskets, per basket u32 items,
/// items…`) with allocation guards: no claimed count can exceed what
/// the remaining bytes could possibly hold. When `max_item` is given,
/// item ids at or above it are rejected. Shared by the event codec and
/// the live-snapshot codec ([`crate::live::snapshot`]).
pub(crate) fn decode_baskets(
    buf: &[u8],
    pos: &mut usize,
    max_item: Option<usize>,
) -> Result<Vec<Transaction>, PersistError> {
    let baskets = get_u32(buf, pos)? as usize;
    if baskets > (buf.len() - *pos) / 4 {
        return Err(PersistError::Corrupt(format!(
            "basket count {baskets} overruns buffer"
        )));
    }
    let mut history = Vec::with_capacity(baskets);
    for _ in 0..baskets {
        let items = get_u32(buf, pos)? as usize;
        if items > (buf.len() - *pos) / 4 {
            return Err(PersistError::Corrupt(format!(
                "item count {items} overruns buffer"
            )));
        }
        let mut basket: Transaction = Vec::with_capacity(items);
        for _ in 0..items {
            let item = ItemId(get_u32(buf, pos)?);
            if max_item.is_some_and(|n| item.index() >= n) {
                return Err(PersistError::Corrupt(format!(
                    "history references unknown item {item}"
                )));
            }
            basket.push(item);
        }
        history.push(basket);
    }
    Ok(history)
}

/// Decode one event payload (everything after the length prefix).
/// Shared with the replication frame codec ([`super::replication`]),
/// which ships the exact WAL record bytes over the wire.
pub(crate) fn decode_payload(payload: &[u8]) -> Result<UpdateEvent, PersistError> {
    let mut pos = 0usize;
    let tag = *payload
        .first()
        .ok_or_else(|| PersistError::Corrupt("empty event payload".into()))?;
    pos += 1;
    let ev = match tag {
        TAG_ADD_ITEM => UpdateEvent::AddItem {
            parent: NodeId(get_u32(payload, &mut pos)?),
        },
        TAG_FOLD_IN => {
            let steps = get_u64(payload, &mut pos)?;
            if steps > MAX_EVENT_FOLD_STEPS as u64 {
                return Err(PersistError::Corrupt(format!(
                    "fold-in steps {steps} exceeds cap {MAX_EVENT_FOLD_STEPS}"
                )));
            }
            let seed = get_u64(payload, &mut pos)?;
            let history = decode_baskets(payload, &mut pos, None)?;
            UpdateEvent::FoldInUser {
                history,
                steps: steps as usize,
                seed,
            }
        }
        TAG_REFOLD => {
            let user = get_u64(payload, &mut pos)?;
            let steps = get_u64(payload, &mut pos)?;
            if steps > MAX_EVENT_FOLD_STEPS as u64 {
                return Err(PersistError::Corrupt(format!(
                    "refold steps {steps} exceeds cap {MAX_EVENT_FOLD_STEPS}"
                )));
            }
            let seed = get_u64(payload, &mut pos)?;
            let history = decode_baskets(payload, &mut pos, None)?;
            UpdateEvent::RefoldUser {
                user: user as usize,
                history,
                steps: steps as usize,
                seed,
            }
        }
        other => return Err(PersistError::Corrupt(format!("unknown event tag {other}"))),
    };
    if pos != payload.len() {
        return Err(PersistError::Corrupt(format!(
            "{} stray bytes inside event record",
            payload.len() - pos
        )));
    }
    Ok(ev)
}

/// Strictly decode a whole event log (header + records). Any damage —
/// including a truncated final record — is an error; use
/// [`decode_log_lossy`] to recover from a crash mid-append.
pub fn decode_log(buf: &[u8]) -> Result<(LogHeader, Vec<UpdateEvent>), PersistError> {
    let mut pos = 0usize;
    let header = decode_header(buf, &mut pos)?;
    let mut events = Vec::new();
    while pos < buf.len() {
        let len = get_u32(buf, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| PersistError::Corrupt("event record overruns log".into()))?;
        events.push(decode_payload(&buf[pos..end])?);
        pos = end;
    }
    Ok((header, events))
}

/// Decode a log, tolerating a truncated tail: returns every record that
/// decodes cleanly plus the number of trailing bytes that were ignored
/// (0 for an intact log). The header must still be valid — a log whose
/// leading bytes are damaged is unrecoverable, not truncated.
pub fn decode_log_lossy(buf: &[u8]) -> Result<(LogHeader, Vec<UpdateEvent>, usize), PersistError> {
    let mut pos = 0usize;
    let header = decode_header(buf, &mut pos)?;
    let mut events = Vec::new();
    while pos < buf.len() {
        let record_start = pos;
        let Ok(len) = get_u32(buf, &mut pos).map(|l| l as usize) else {
            return Ok((header, events, buf.len() - record_start));
        };
        let Some(end) = pos.checked_add(len).filter(|&e| e <= buf.len()) else {
            return Ok((header, events, buf.len() - record_start));
        };
        match decode_payload(&buf[pos..end]) {
            Ok(ev) => events.push(ev),
            Err(_) => return Ok((header, events, buf.len() - record_start)),
        }
        pos = end;
    }
    Ok((header, events, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HDR: LogHeader = LogHeader {
        base_users: 120,
        base_items: 400,
    };

    fn sample_events() -> Vec<UpdateEvent> {
        vec![
            UpdateEvent::AddItem { parent: NodeId(7) },
            UpdateEvent::FoldInUser {
                history: vec![vec![ItemId(1), ItemId(2)], vec![], vec![ItemId(9)]],
                steps: 400,
                seed: 0xDEAD_BEEF,
            },
            UpdateEvent::AddItem { parent: NodeId(3) },
            UpdateEvent::RefoldUser {
                user: 121,
                history: vec![vec![ItemId(4)], vec![ItemId(1), ItemId(2)]],
                steps: 250,
                seed: 77,
            },
        ]
    }

    fn encode_all(events: &[UpdateEvent]) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_log_header(&mut buf, &HDR);
        for ev in events {
            encode_event(&mut buf, ev);
        }
        buf
    }

    #[test]
    fn roundtrip() {
        let events = sample_events();
        let buf = encode_all(&events);
        assert_eq!(decode_log(&buf).unwrap(), (HDR, events.clone()));
        assert_eq!(decode_log_lossy(&buf).unwrap(), (HDR, events, 0));
    }

    #[test]
    fn empty_log_is_just_a_header() {
        let buf = encode_all(&[]);
        assert_eq!(buf.len(), LOG_HEADER_LEN);
        let (header, events) = decode_log(&buf).unwrap();
        assert_eq!(header, HDR);
        assert!(events.is_empty());
    }

    #[test]
    fn strict_rejects_truncation_lossy_recovers_prefix() {
        let events = sample_events();
        let buf = encode_all(&events);
        // Cut mid-way through the final record.
        let cut = buf.len() - 2;
        assert!(decode_log(&buf[..cut]).is_err());
        let (header, recovered, ignored) = decode_log_lossy(&buf[..cut]).unwrap();
        assert_eq!(header, HDR);
        assert_eq!(recovered, events[..3].to_vec());
        assert!(ignored > 0);
    }

    #[test]
    fn bad_header_is_fatal_for_both() {
        let mut buf = encode_all(&sample_events());
        buf[0] ^= 0xFF;
        assert!(decode_log(&buf).is_err());
        assert!(decode_log_lossy(&buf).is_err());
        let mut buf2 = encode_all(&[]);
        buf2[4] = 9; // version
        assert!(decode_log(&buf2).is_err());
    }

    #[test]
    fn unknown_tag_and_stray_bytes_rejected() {
        let mut buf = encode_all(&[]);
        put_u32(&mut buf, 1);
        buf.push(42); // unknown tag
        assert!(decode_log(&buf).is_err());

        let mut buf = encode_all(&[]);
        put_u32(&mut buf, 6);
        buf.push(TAG_ADD_ITEM);
        put_u32(&mut buf, 3);
        buf.push(0); // one stray byte inside the record
        assert!(decode_log(&buf).is_err());
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A fold-in record claiming u32::MAX baskets in a 20-byte
        // payload must fail fast instead of reserving gigabytes.
        let mut buf = encode_all(&[]);
        let mut payload = vec![TAG_FOLD_IN];
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 1);
        put_u32(&mut payload, u32::MAX);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(&payload);
        assert!(decode_log(&buf).is_err());
    }

    #[test]
    fn absurd_step_counts_rejected_at_decode() {
        // A flipped bit in a logged steps field must not make replay
        // spin for ~2^60 BPR iterations.
        let mut buf = encode_all(&[]);
        let mut payload = vec![TAG_FOLD_IN];
        put_u64(&mut payload, u64::MAX / 2);
        put_u64(&mut payload, 1);
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 0); // one basket, one item id 0
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(&payload);
        let err = decode_log(&buf).unwrap_err();
        assert!(err.to_string().contains("steps"), "{err}");
        // The same record with a sane step count decodes fine.
        let mut buf = encode_all(&[]);
        encode_event(
            &mut buf,
            &UpdateEvent::FoldInUser {
                history: vec![vec![ItemId(0)]],
                steps: MAX_EVENT_FOLD_STEPS,
                seed: 1,
            },
        );
        assert_eq!(decode_log(&buf).unwrap().1.len(), 1);
    }

    #[test]
    fn log_header_matches_model_shape_exactly() {
        // The lineage stamp is shape equality on BOTH axes. Replication
        // leans on this: a follower handshake presents its shape, and
        // any divergence — including the equal-sum swap where one axis
        // is up and the other down — must read as a different lineage,
        // never as a resumable offset.
        use crate::config::ModelConfig;
        use crate::train::TfTrainer;
        use taxrec_dataset::{DatasetConfig, SyntheticDataset};
        let d = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(40), 11);
        let model = TfTrainer::new(
            ModelConfig::tf(4, 1).with_factors(4).with_epochs(1),
            &d.taxonomy,
        )
        .fit(&d.train, 1);
        let hdr = LogHeader {
            base_users: model.num_users() as u64,
            base_items: model.num_items() as u64,
        };
        assert!(hdr.matches_model(&model));
        for (du, di) in [(1i64, 0i64), (0, 1), (-1, 0), (0, -1), (1, -1), (-1, 1)] {
            let h = LogHeader {
                base_users: hdr.base_users.wrapping_add_signed(du),
                base_items: hdr.base_items.wrapping_add_signed(di),
            };
            assert!(!h.matches_model(&model), "{h:?} must not match");
        }
    }
}
