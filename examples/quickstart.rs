//! Quickstart: generate a synthetic shopping log, train the
//! taxonomy-aware model TF(4, 1), evaluate it, and produce structured
//! recommendations for one user.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taxrec::dataset::{DatasetConfig, SyntheticDataset};
use taxrec::model::{
    eval::{evaluate, EvalConfig},
    ModelConfig, Scorer, TfTrainer,
};

fn main() {
    // 1. Data: a seeded synthetic purchase log over a 3-level taxonomy.
    let data = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(2000), 42);
    println!(
        "dataset: {} users, {} items, taxonomy levels {:?}",
        data.log.num_users(),
        data.taxonomy.num_items(),
        data.taxonomy.level_sizes()
    );

    // 2. Train TF(4, 1): full taxonomy depth, 1-step Markov chain.
    let config = ModelConfig::tf(4, 1).with_factors(16).with_epochs(15);
    println!("training {} ...", config.system_name());
    let trainer = TfTrainer::new(config, &data.taxonomy);
    let (model, stats) = trainer.fit_parallel(&data.train, 7, 4);
    println!(
        "trained {} SGD steps over {} epochs ({:.2?}/epoch)",
        stats.steps,
        stats.epoch_times.len(),
        stats.mean_epoch_time()
    );

    // 3. Evaluate on the held-out suffix of each user's history.
    let result = evaluate(&model, &data.train, &data.test, &EvalConfig::default());
    println!(
        "test AUC = {:.4}, mean rank = {:.1}, hit@10 = {:.4}",
        result.auc.unwrap_or(0.0),
        result.mean_rank.unwrap_or(0.0),
        result.hit_at_k.unwrap_or(0.0)
    );

    // 4. Recommend for one user: top items and top categories
    //    (the "structured ranking" the taxonomy enables).
    let user = 0usize;
    let scorer = Scorer::new(&model);
    let query = scorer.query(user, data.train.user(user));
    let bought = data.train.distinct_items(user);
    println!(
        "\nuser {user} bought {} distinct items; top-5 recommendations:",
        bought.len()
    );
    for (rank, (item, score)) in scorer.top_k_items(&query, 5, &bought).iter().enumerate() {
        let node = data.taxonomy.item_node(*item);
        let cat = data.taxonomy.parent(node).expect("items have parents");
        println!(
            "  #{:<2} item {item}  (category {cat})  score {score:+.3}",
            rank + 1
        );
    }
    println!("top-3 categories (taxonomy level 1):");
    for (rank, (node, score)) in scorer.rank_level(&query, 1).iter().take(3).enumerate() {
        println!("  #{:<2} category {node}  score {score:+.3}", rank + 1);
    }
}
