//! Cold start: how the taxonomy rescues items that were never trained.
//!
//! A *cold* item has no training purchases, so a plain matrix
//! factorisation model knows nothing about it — its rank is random. The
//! TF model's effective factor for a cold item degrades gracefully to
//! its super-category's factor (the leaf offset stays at the prior mean
//! 0), so users interested in that category still see the new product.
//! This is the mechanism behind the paper's Fig. 7(c).
//!
//! ```text
//! cargo run --release --example cold_start
//! ```

use taxrec::dataset::{DatasetConfig, SyntheticDataset};
use taxrec::model::{metrics, ModelConfig, Scorer, TfTrainer};

fn main() {
    let data = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(3000), 9);
    let cold = data.cold_items();
    println!(
        "{} of {} items are cold (never purchased in training)",
        cold.len(),
        data.taxonomy.num_items()
    );

    // Train the taxonomy model and the MF baseline on the same data.
    let tf = TfTrainer::new(
        ModelConfig::tf(4, 0).with_factors(16).with_epochs(15),
        &data.taxonomy,
    )
    .fit(&data.train, 3);
    let mf = TfTrainer::new(
        ModelConfig::mf(0).with_factors(16).with_epochs(15),
        &data.taxonomy,
    )
    .fit(&data.train, 3);

    // For every *test* purchase of a cold item, record its normalised
    // rank ((n − rank)/(n − 1): 1.0 = top of the list, 0.5 = random).
    let n = data.taxonomy.num_items();
    let mut tf_norm = Vec::new();
    let mut mf_norm = Vec::new();
    for (model, out) in [(&tf, &mut tf_norm), (&mf, &mut mf_norm)] {
        let scorer = Scorer::new(model);
        let mut scores = vec![0.0f32; n];
        for u in 0..data.test.num_users() {
            let Some(basket) = data.test.user(u).first() else {
                continue;
            };
            let query = scorer.query(u, data.train.user(u));
            scorer.score_all_items_into(&query, &mut scores);
            for &item in basket {
                if cold.binary_search(&item).is_ok() {
                    let r = metrics::rank_of(&scores, item.index());
                    out.push((n as f64 - r) / (n as f64 - 1.0));
                }
            }
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("cold purchases evaluated : {}", tf_norm.len());
    println!(
        "MF(0)  mean normalised rank of cold items: {:.3} (0.5 = random)",
        mean(&mf_norm)
    );
    println!(
        "TF(4,0) mean normalised rank of cold items: {:.3}",
        mean(&tf_norm)
    );
    println!(
        "\nThe TF model places never-seen items {:.0}% higher than chance by\n\
         scoring them through their category's learned factor.",
        (mean(&tf_norm) - 0.5) * 200.0
    );
}
