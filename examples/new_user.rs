//! New-user fold-in: serving a user who wasn't in the training matrix.
//!
//! Retraining the whole model for every signup is not an option in
//! production. The fold-in trick keeps all item/taxonomy factors frozen
//! and fits only the newcomer's vector from their first few purchases —
//! a few hundred BPR steps, microseconds of work.
//!
//! ```text
//! cargo run --release --example new_user
//! ```

use taxrec::dataset::{DatasetConfig, SyntheticDataset};
use taxrec::model::{
    dynamic::{fold_in_user, folded_user_query},
    metrics, ModelConfig, Scorer, TfTrainer,
};

fn main() {
    let data = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(2500), 17);

    // Train on the first 2000 users only; the rest "sign up later".
    let cutoff = 2000usize;
    let mut b = taxrec::dataset::PurchaseLogBuilder::with_capacity(cutoff);
    for u in 0..cutoff {
        b.push_user(data.train.user(u).to_vec());
    }
    let train_subset = b.build();
    let model = TfTrainer::new(
        ModelConfig::tf(4, 1).with_factors(16).with_epochs(15),
        &data.taxonomy,
    )
    .fit(&train_subset, 3);
    let scorer = Scorer::new(&model);
    println!(
        "model trained on {} users; folding in {} late signups\n",
        cutoff,
        data.train.num_users() - cutoff
    );

    // For each late user: fold in on their train history, predict their
    // first test transaction.
    let n = model.num_items();
    let mut folded_auc = 0.0f64;
    let mut anon_auc = 0.0f64;
    let mut count = 0u32;
    for u in cutoff..data.train.num_users() {
        let history = data.train.user(u);
        let Some(target) = data.test.user(u).first() else {
            continue;
        };
        if history.is_empty() || target.is_empty() {
            continue;
        }
        let v = fold_in_user(&scorer, history, 500, u as u64);
        let q_folded = folded_user_query(&scorer, &v, history);
        // Anonymous baseline: no user vector, history-only Markov term.
        let q_anon = folded_user_query(&scorer, &vec![0.0; model.k()], history);
        let positives: Vec<usize> = target.iter().map(|i| i.index()).collect();
        let sf = scorer.score_all_items(&q_folded);
        let sa = scorer.score_all_items(&q_anon);
        if let (Some(af), Some(aa)) = (metrics::auc(&sf, &positives), metrics::auc(&sa, &positives))
        {
            folded_auc += af;
            anon_auc += aa;
            count += 1;
        }
        let _ = n;
    }
    println!("late signups evaluated : {count}");
    println!(
        "anonymous (history-only) AUC : {:.4}",
        anon_auc / count as f64
    );
    println!(
        "after fold-in            AUC : {:.4}",
        folded_auc / count as f64
    );
    println!(
        "\nFold-in lifts a brand-new user's ranking quality without touching\n\
         any shared parameter — the item, taxonomy and next-item factors\n\
         stay exactly as trained."
    );
}
