//! Batch serving: answer a 64-user top-K batch through the
//! [`RecommendEngine`], compare the exhaustive and cascaded backends,
//! and verify they agree with per-user calls.
//!
//! ```text
//! cargo run --release --example batch_serving
//! ```
//!
//! [`RecommendEngine`]: taxrec::model::recommend::RecommendEngine

use std::time::Instant;
use taxrec::dataset::{DatasetConfig, SyntheticDataset};
use taxrec::model::recommend::{Backend, RecommendEngine, RecommendRequest};
use taxrec::model::{CascadeConfig, ModelConfig, TfTrainer};
use taxrec::taxonomy::ItemId;

fn main() {
    // 1. Data + model, as in the quickstart.
    let data = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(2000), 42);
    let config = ModelConfig::tf(4, 1).with_factors(16).with_epochs(10);
    println!("training {} ...", config.system_name());
    let (model, _) = TfTrainer::new(config, &data.taxonomy).fit_parallel(&data.train, 7, 4);

    // 2. Freeze the model into a serving engine. This materialises the
    //    effective factors once; every request after that is scan + heap.
    let t0 = Instant::now();
    let engine = RecommendEngine::new(&model);
    println!("engine built in {:.2?}", t0.elapsed());

    // 3. A 64-user batch: full training history as the Markov
    //    conditioning context, past purchases excluded.
    let users: Vec<usize> = (0..64).collect();
    let excludes: Vec<Vec<ItemId>> = users
        .iter()
        .map(|&u| data.train.distinct_items(u))
        .collect();
    let requests: Vec<RecommendRequest<'_>> = users
        .iter()
        .zip(&excludes)
        .map(|(&u, excl)| RecommendRequest {
            user: u,
            history: data.train.user(u),
            k: 10,
            exclude: excl,
        })
        .collect();

    // 4. Serve the batch through both backends.
    let t0 = Instant::now();
    let exhaustive = engine.recommend_batch(&requests, 4);
    let t_exhaustive = t0.elapsed();

    let cascaded_backend = Backend::Cascaded(CascadeConfig::uniform(model.taxonomy().depth(), 0.2));
    let t0 = Instant::now();
    let cascaded = engine.recommend_batch_with(&requests, 4, &cascaded_backend);
    let t_cascaded = t0.elapsed();

    let rate = |d: std::time::Duration| users.len() as f64 / d.as_secs_f64().max(1e-9);
    println!(
        "exhaustive: {t_exhaustive:.2?} ({:.0} users/sec)   cascaded K=0.2: {t_cascaded:.2?} ({:.0} users/sec)",
        rate(t_exhaustive),
        rate(t_cascaded)
    );

    // 5. Batched results are exactly the per-user results.
    for (req, batched) in requests.iter().zip(&exhaustive) {
        assert_eq!(batched, &engine.recommend(req), "user {}", req.user);
    }
    println!(
        "verified: batch output == per-user output for all {} users",
        users.len()
    );

    // 6. How much of the exhaustive top-10 does the fast path keep?
    let mut overlap = 0usize;
    for (full, fast) in exhaustive.iter().zip(&cascaded) {
        overlap += fast
            .iter()
            .filter(|(i, _)| full.iter().any(|(j, _)| j == i))
            .count();
    }
    println!(
        "cascade K=0.2 kept {overlap}/{} of the exhaustive top-10 picks",
        10 * users.len()
    );

    println!("\nuser 0 top-5 (exhaustive):");
    for (rank, (item, score)) in exhaustive[0].iter().take(5).enumerate() {
        println!("  #{:<2} item {item}  score {score:+.3}", rank + 1);
    }
}
