//! Next-basket dynamics: the short-term (Markov) term in action.
//!
//! The paper's motivating example: right after buying a camera, a user
//! is far more likely to buy a flash card or a lens. The TF(U, B≥1)
//! model carries *next-item* factors whose taxonomy roll-up captures
//! "after anything in category C, users buy things in category C'" —
//! without the item-level sparsity an FPMC-style model suffers.
//!
//! This example trains TF(4, 1) and shows, for a concrete user, how the
//! top recommendations shift when the conditioning basket changes.
//!
//! ```text
//! cargo run --release --example next_basket
//! ```

use taxrec::dataset::{DatasetConfig, SyntheticDataset, Transaction};
use taxrec::model::{ModelConfig, Scorer, TfTrainer};
use taxrec::taxonomy::{ItemId, NodeId};

fn main() {
    let data = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(3000), 21);
    let model = TfTrainer::new(
        ModelConfig::tf(4, 1).with_factors(16).with_epochs(15),
        &data.taxonomy,
    )
    .fit(&data.train, 5);
    let scorer = Scorer::new(&model);
    let tax = model.taxonomy();

    // Pick two items from *different* top-level categories to condition on.
    let item_a = ItemId(0);
    let item_b = (1..tax.num_items() as u32)
        .map(ItemId)
        .find(|&i| top_cat(tax, i) != top_cat(tax, item_a))
        .expect("taxonomy has more than one top-level category");

    let user = 7usize;
    println!("user {user}, model {}\n", model.config().system_name());
    for (label, basket) in [
        (
            format!(
                "after buying {item_a} (top category {})",
                top_cat(tax, item_a)
            ),
            vec![item_a],
        ),
        (
            format!(
                "after buying {item_b} (top category {})",
                top_cat(tax, item_b)
            ),
            vec![item_b],
        ),
    ] {
        let history: Vec<Transaction> = vec![basket];
        let query = scorer.query(user, &history);
        println!("top-5 {label}:");
        let mut same_cat = 0;
        let conditioning_cat = top_cat(tax, history[0][0]);
        for (rank, (item, score)) in scorer
            .top_k_items(&query, 5, &history[0])
            .iter()
            .enumerate()
        {
            let cat = top_cat(tax, *item);
            if cat == conditioning_cat {
                same_cat += 1;
            }
            println!(
                "  #{:<2} item {item} (top category {cat}) score {score:+.3}",
                rank + 1
            );
        }
        println!("  → {same_cat}/5 recommendations share the conditioning basket's top category\n");
    }

    println!(
        "The short-term term pulls recommendations toward the taxonomy\n\
         neighbourhood of the previous basket; with B = 0 both lists would\n\
         be identical (pure long-term interest)."
    );
}

fn top_cat(tax: &taxrec::taxonomy::Taxonomy, item: ItemId) -> NodeId {
    tax.ancestor_at_level(tax.item_node(item), 1)
}
