//! Category targeting: the advertising use-case from the paper's intro.
//!
//! "Using taxonomies allows us to target users by product categories,
//! which is commonly required in advertising campaigns." The effective
//! factor of an interior node ranks *categories* per user — and,
//! inverted, ranks users per category. This example builds a small
//! campaign audience for one category and verifies the audience actually
//! buys more from it. It also demonstrates cascaded inference as the
//! fast path for producing structured recommendations.
//!
//! ```text
//! cargo run --release --example category_targeting
//! ```

use taxrec::dataset::{DatasetConfig, SyntheticDataset};
use taxrec::model::{cascade, CascadeConfig, ModelConfig, Scorer, TfTrainer};
use taxrec::taxonomy::NodeId;

fn main() {
    let data = SyntheticDataset::generate(&DatasetConfig::tiny().with_users(3000), 33);
    let model = TfTrainer::new(
        ModelConfig::tf(4, 0).with_factors(16).with_epochs(15),
        &data.taxonomy,
    )
    .fit(&data.train, 4);
    let scorer = Scorer::new(&model);
    let tax = model.taxonomy();

    // Campaign target: the busiest top-level category.
    let target = NodeId(tax.nodes_at_level(1)[0]);
    println!("campaign target: top-level category {target}");

    // Score every user's affinity to the target category and take the
    // top 10% as the audience.
    let mut affinities: Vec<(usize, f32)> = (0..model.num_users())
        .map(|u| {
            let q = scorer.query(u, data.train.user(u));
            (u, scorer.score_node(&q, target))
        })
        .collect();
    affinities.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let audience: Vec<usize> = affinities[..model.num_users() / 10]
        .iter()
        .map(|&(u, _)| u)
        .collect();

    // Validate on the *test* split: does the audience buy in the target
    // category more often than the rest?
    let buys_in_target = |users: &[usize]| {
        let mut buyers = 0usize;
        for &u in users {
            let bought = data
                .test
                .user(u)
                .iter()
                .flatten()
                .any(|&i| tax.ancestor_at_level(tax.item_node(i), 1) == target);
            if bought {
                buyers += 1;
            }
        }
        buyers as f64 / users.len().max(1) as f64
    };
    let rest: Vec<usize> = affinities[model.num_users() / 10..]
        .iter()
        .map(|&(u, _)| u)
        .collect();
    let lift = buys_in_target(&audience) / buys_in_target(&rest).max(1e-9);
    println!(
        "audience size {}; {:.1}% of the audience buys in-category during test vs {:.1}% of others (lift {lift:.1}x)",
        audience.len(),
        100.0 * buys_in_target(&audience),
        100.0 * buys_in_target(&rest),
    );

    // Structured recommendation for the best-matching user, via the fast
    // cascaded path (keep 50% of each level).
    let best_user = audience[0];
    let q = scorer.query(best_user, data.train.user(best_user));
    let result = cascade(&scorer, &q, &CascadeConfig::uniform(tax.depth(), 0.5));
    println!(
        "\nuser {best_user}: cascaded inference scored {} nodes (exhaustive = {} items)",
        result.scored_nodes,
        tax.num_items()
    );
    for (li, level) in result.per_level.iter().enumerate().take(2) {
        let head: Vec<String> = level
            .iter()
            .take(3)
            .map(|(n, s)| format!("{n}({s:+.2})"))
            .collect();
        println!("  level {} leaders: {}", li + 1, head.join("  "));
    }
    let top: Vec<String> = result
        .items
        .iter()
        .take(5)
        .map(|(i, s)| format!("{i}({s:+.2})"))
        .collect();
    println!("  top items: {}", top.join("  "));
}
